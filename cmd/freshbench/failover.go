package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"freshcache"
)

// failoverBucket is one 100ms slice of the load trajectory around the
// store kill.
type failoverBucket struct {
	TSec       float64 `json:"t_s"`
	Reads      int     `json:"reads"`
	Writes     int     `json:"writes"`
	Errors     int     `json:"errors"`
	Violations int     `json:"violations"` // reads staler than the crash bound
}

// failoverReport is the machine-readable record of a kill-a-store run,
// alongside BENCH_pipeline.json and BENCH_reshard.json.
type failoverReport struct {
	Benchmark    string           `json:"benchmark"`
	Generated    string           `json:"generated"`
	TBoundMS     float64          `json:"t_bound_ms"`
	CrashBoundMS float64          `json:"crash_bound_ms"`
	LeaseMS      float64          `json:"lease_ms"`
	Replicas     int              `json:"replicas"`
	Workers      int              `json:"workers"`
	Keys         int              `json:"keys"`
	DurationS    float64          `json:"duration_s"`
	KillAtS      float64          `json:"kill_at_s"`
	PromotedAtS  float64          `json:"promoted_at_s"`
	VictimShare  float64          `json:"victim_share"` // fraction of keys the victim owned
	LostWrites   int              `json:"lost_writes"`
	TotalReads   int              `json:"total_reads"`
	TotalWrites  int              `json:"total_writes"`
	TotalErrors  int              `json:"total_errors"`
	Violations   int              `json:"violations"`
	Buckets      []failoverBucket `json:"buckets"`
	// NodeMetrics is each node's end-of-run stats snapshot (the same
	// registries /metrics renders), keyed by role — the failover
	// counters and replication lag land in the recorded artifact.
	NodeMetrics map[string]map[string]uint64 `json:"node_metrics,omitempty"`
}

const failoverBucketWidth = 100 * time.Millisecond

// failoverBench boots a replicated (R=2) 3-store/2-cache/1-LB cluster
// on loopback with the lease-based failure detector armed, drives
// mixed load, kills one store halfway through, and records the
// throughput / staleness trajectory through the automatic failover.
func failoverBench(workers int, benchtime time.Duration, tBound float64, jsonPath string) error {
	T := time.Duration(tBound * float64(time.Second))
	if T <= 0 {
		T = 500 * time.Millisecond
	}
	lease := 400 * time.Millisecond
	// The crash bound: the dead store can take one un-flushed batch
	// interval of invalidates with it, and the disconnect deadline
	// caps the resident tail at kill-time + T.
	crashBound := 2 * T
	if benchtime < 6*T {
		benchtime = 6 * T
	}
	quiet := log.New(io.Discard, "", 0)

	listen := func() (net.Listener, string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		return ln, ln.Addr().String(), nil
	}

	// Store listeners first (the coordinator's ring needs the
	// addresses), then the coordinator, then the heartbeating stores.
	const nStores = 3
	storeLns := make([]net.Listener, nStores)
	storeAddrs := make([]string, nStores)
	for i := range storeLns {
		ln, addr, err := listen()
		if err != nil {
			return err
		}
		storeLns[i], storeAddrs[i] = ln, addr
	}
	co, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
		Stores: storeAddrs, Replicas: 2, LeaseInterval: lease, Logger: quiet,
	})
	if err != nil {
		return err
	}
	coLn, coAddr, err := listen()
	if err != nil {
		return err
	}
	go co.Serve(coLn) //nolint:errcheck
	defer co.Close()

	stores := make([]*freshcache.StoreServer, nStores)
	for i := range stores {
		stores[i] = freshcache.NewStoreServer(freshcache.StoreConfig{
			T: T, ShardID: fmt.Sprintf("shard-%d", i), Logger: quiet,
			ClusterAddr: coAddr, AdvertiseAddr: storeAddrs[i],
			HeartbeatInterval: lease / 8,
		})
		go stores[i].Serve(storeLns[i]) //nolint:errcheck
		defer stores[i].Close()
	}

	var cacheAddrs []string
	for i := 0; i < 2; i++ {
		ca, err := freshcache.NewCacheServer(freshcache.CacheConfig{
			ClusterAddr: coAddr, T: T, Name: fmt.Sprintf("cache-%d", i),
			Logger: quiet, WatchInterval: 25 * time.Millisecond,
			RetryInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		ln, addr, err := listen()
		if err != nil {
			return err
		}
		go ca.Serve(ln) //nolint:errcheck
		defer ca.Close()
		cacheAddrs = append(cacheAddrs, addr)
	}
	balancer, err := freshcache.NewLoadBalancer(freshcache.LBConfig{
		ClusterAddr: coAddr, CacheAddrs: cacheAddrs,
		WatchInterval: 25 * time.Millisecond, Logger: quiet,
	})
	if err != nil {
		return err
	}
	lbLn, lbAddr, err := listen()
	if err != nil {
		return err
	}
	go balancer.Serve(lbLn) //nolint:errcheck
	defer balancer.Close()

	// Preload and truth-track every key.
	const nkeys = 256
	keys := make([]string, nkeys)
	tru := newBenchTruth()
	seed := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if _, err := seed.Put(keys[i], []byte("0")); err != nil {
			seed.Close()
			return fmt.Errorf("preload: %w", err)
		}
		tru.recordAck(keys[i], 0)
	}
	seed.Close()

	nBuckets := int(benchtime/failoverBucketWidth) + 2
	var (
		mu      sync.Mutex
		buckets = make([]failoverBucket, nBuckets)
		acked   = make(map[string]uint64, nkeys) // high-water acked seq per key
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	start := time.Now()
	record := func(at time.Time, isWrite, isErr bool, staleOver time.Duration) {
		i := int(at.Sub(start) / failoverBucketWidth)
		if i < 0 || i >= nBuckets {
			return
		}
		mu.Lock()
		b := &buckets[i]
		switch {
		case isErr:
			b.Errors++
		case isWrite:
			b.Writes++
		default:
			b.Reads++
			if staleOver > 0 {
				b.Violations++
			}
		}
		mu.Unlock()
	}

	// One writer plus reader workers, all through the LB; request
	// errors during the detection window are expected and recorded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
		defer c.Close()
		seq := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			key := keys[i%len(keys)]
			_, err := c.Put(key, []byte(strconv.FormatUint(seq, 10)))
			record(time.Now(), true, err != nil, 0)
			if err == nil {
				tru.recordAck(key, seq)
				mu.Lock()
				if seq > acked[key] {
					acked[key] = seq
				}
				mu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
			defer c.Close()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				t0 := time.Now()
				v, _, err := c.Get(key)
				if err != nil {
					record(t0, false, true, 0)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				seq, perr := strconv.ParseUint(string(v), 10, 64)
				if perr != nil {
					record(t0, false, true, 0)
					continue
				}
				record(t0, false, false, tru.staleBy(key, seq, t0, crashBound))
			}
		}(w)
	}

	// Victim accounting, then the mid-run kill.
	r, err := freshcache.NewRing(storeAddrs, 0)
	if err != nil {
		return err
	}
	victimOwned := 0
	for _, key := range keys {
		if r.OwnerAddr(key) == storeAddrs[0] {
			victimOwned++
		}
	}
	half := benchtime / 2
	time.Sleep(half)
	killAt := time.Since(start)
	stores[0].Close()

	// Wait for the automatic promotion (no operator action).
	promotedAt := time.Duration(0)
	deadline := time.Now().Add(10 * lease)
	for {
		if len(co.RingInfo().Nodes) == nStores-1 {
			promotedAt = time.Since(start)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("failure detector never promoted (ring %v)", co.RingInfo().Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	time.Sleep(benchtime - half)
	close(stop)
	wg.Wait()

	// Lost-write audit: after quiescing past the crash bound, every
	// key must read back at least its last acknowledged sequence.
	time.Sleep(crashBound)
	lost := 0
	audit := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
	for _, key := range keys {
		v, _, err := audit.Get(key)
		if err != nil {
			lost++
			continue
		}
		got, perr := strconv.ParseUint(string(v), 10, 64)
		mu.Lock()
		want := acked[key]
		mu.Unlock()
		if perr != nil || got < want {
			lost++
		}
	}
	audit.Close()

	report := failoverReport{
		Benchmark:    "kill-store-failover",
		Generated:    time.Now().UTC().Format(time.RFC3339),
		TBoundMS:     float64(T) / float64(time.Millisecond),
		CrashBoundMS: float64(crashBound) / float64(time.Millisecond),
		LeaseMS:      float64(lease) / float64(time.Millisecond),
		Replicas:     2,
		Workers:      workers,
		Keys:         nkeys,
		DurationS:    time.Since(start).Seconds(),
		KillAtS:      killAt.Seconds(),
		PromotedAtS:  promotedAt.Seconds(),
		VictimShare:  float64(victimOwned) / float64(nkeys),
		LostWrites:   lost,
	}
	for i := range buckets {
		b := buckets[i]
		if b.Reads+b.Writes+b.Errors == 0 {
			continue
		}
		b.TSec = float64(i) * failoverBucketWidth.Seconds()
		report.Buckets = append(report.Buckets, b)
		report.TotalReads += b.Reads
		report.TotalWrites += b.Writes
		report.TotalErrors += b.Errors
		report.Violations += b.Violations
	}
	report.NodeMetrics = map[string]map[string]uint64{
		"coordinator": co.Metrics().StatsMap(),
		"lb":          balancer.StatsMap(),
	}
	for i, st := range stores {
		report.NodeMetrics[fmt.Sprintf("store-%d", i)] = st.Metrics().StatsMap()
	}

	w := tw()
	fmt.Fprintln(w, "t (s)\treads\twrites\terrors\tstale>2T")
	for _, b := range report.Buckets {
		fmt.Fprintf(w, "%.1f\t%d\t%d\t%d\t%d\n", b.TSec, b.Reads, b.Writes, b.Errors, b.Violations)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("kill at %.2fs, promoted at %.2fs (detection %.0fms, lease %.0fms), victim owned %.3f of keys\n",
		report.KillAtS, report.PromotedAtS,
		(report.PromotedAtS-report.KillAtS)*1000, report.LeaseMS, report.VictimShare)
	fmt.Printf("totals: %d reads, %d writes, %d errors, %d reads staler than 2T, %d lost writes\n",
		report.TotalReads, report.TotalWrites, report.TotalErrors, report.Violations, report.LostWrites)
	if report.Violations > 0 || report.LostWrites > 0 {
		return fmt.Errorf("failover broke the guarantee: %d staleness violations, %d lost writes",
			report.Violations, report.LostWrites)
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
