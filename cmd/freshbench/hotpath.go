package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"freshcache"
)

// hotpathBaseline is the committed pre-optimization reference the
// hotpath run compares itself against: the pipelined transport's row
// from BENCH_pipeline.json (recorded before the zero-allocation work).
type hotpathBaseline struct {
	Source    string  `json:"source"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
}

// batchPoint is one batch size's measured point in the hotpath sweep.
// Ops counts keys served (not frames), so ops/sec stays comparable
// across batch sizes; latency percentiles are whole-request round
// trips, and the alloc figures are whole-process malloc deltas divided
// by keys served — the amortized per-key cost of the batched frame.
type batchPoint struct {
	Batch        int     `json:"batch"`
	Ops          int     `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50us        float64 `json:"p50_us"`
	P99us        float64 `json:"p99_us"`
	AllocsPerKey float64 `json:"allocs_per_key"`
	BytesPerKey  float64 `json:"bytes_per_key"`
	GCCycles     uint32  `json:"gc_cycles"`
}

// hotpathReport is the machine-readable record of one hotpath run, as
// written to BENCH_hotpath.json.
type hotpathReport struct {
	Benchmark string  `json:"benchmark"`
	Generated string  `json:"generated"`
	Workers   int     `json:"workers"`
	DurationS float64 `json:"duration_s"`
	ValueSize int     `json:"value_bytes"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	// AllocsPerOp and BytesPerOp are whole-process malloc deltas divided
	// by completed ops. Client and store share the process here, so this
	// is the full request path — encode, syscalls, demux, store lookup,
	// response — not just the client half.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// GCCycles is how many collections the measurement window triggered.
	GCCycles uint32 `json:"gc_cycles"`

	// StoreMetrics is the store's end-of-run stats snapshot (the same
	// registry /metrics renders), so a recorded run carries the server's
	// own view — hit/fill mix, malformed frames, served-age sample count.
	StoreMetrics map[string]uint64 `json:"store_metrics,omitempty"`

	Baseline          *hotpathBaseline `json:"baseline,omitempty"`
	SpeedupVsBaseline float64          `json:"speedup_vs_baseline,omitempty"`

	// BatchSweep is the batched-read trajectory: the same workload
	// re-driven through MGET at increasing keys-per-frame. The top-level
	// fields above stay the batch=1 single-GET numbers, so recorded runs
	// remain comparable across versions.
	BatchSweep []batchPoint `json:"batch_sweep,omitempty"`
}

// hotpathBench boots one live store on loopback and hammers reads over
// the multiplexed transport, recording throughput, latency percentiles,
// and whole-process allocation rates — at batch size 1 (plain GETs) and
// through the batched MGET path. batch == 0 sweeps {1, 8, 32}; batch > 0
// measures that one point (CI's bench smoke runs a single batched
// point). It is the acceptance benchmark for the zero-allocation and
// batched-operations hot-path work; pair it with the servers' -obs flag
// to see where the remaining cycles go.
func hotpathBench(workers int, benchtime time.Duration, jsonPath string, batch int) error {
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: time.Hour, ShardID: "bench"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go st.Serve(ln) //nolint:errcheck
	defer st.Close()
	addr := ln.Addr().String()

	const nkeys, valSize = 64, 128
	seed := freshcache.NewClient(addr, freshcache.ClientOptions{})
	val := make([]byte, valSize)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if _, err := seed.Put(keys[i], val); err != nil {
			seed.Close()
			return fmt.Errorf("preload: %w", err)
		}
	}
	seed.Close()

	c := freshcache.NewClient(addr, freshcache.ClientOptions{})
	defer c.Close()

	// Warm up: fill the frame/Msg/waiter pools (single-key and batched)
	// and let the connections settle so the measured window sees steady
	// state.
	warm := time.Now().Add(benchtime / 4)
	for time.Now().Before(warm) {
		if _, _, err := c.Get(keys[0]); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
		if _, err := c.MGet(keys[:8]); err != nil {
			return fmt.Errorf("warmup mget: %w", err)
		}
	}

	sizes := []int{1, 8, 32}
	if batch > 0 {
		sizes = []int{batch}
	}
	report := hotpathReport{
		Benchmark: "hotpath-get-throughput",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Workers:   workers,
		DurationS: benchtime.Seconds(),
		ValueSize: valSize,
	}
	for _, b := range sizes {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := driveBatchWorkers(c, keys, workers, b, benchtime)
		if err != nil {
			return err
		}
		runtime.ReadMemStats(&after)
		pt := batchPoint{
			Batch:     b,
			Ops:       res.Ops,
			OpsPerSec: res.OpsPerSec,
			P50us:     res.P50us,
			P99us:     res.P99us,
			GCCycles:  after.NumGC - before.NumGC,
		}
		if res.Ops > 0 {
			pt.AllocsPerKey = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
			pt.BytesPerKey = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Ops)
		}
		report.BatchSweep = append(report.BatchSweep, pt)
		if b == 1 {
			// The single-GET point doubles as the top-level record, so
			// recorded hotpath runs stay comparable across versions.
			report.Ops, report.OpsPerSec = pt.Ops, pt.OpsPerSec
			report.P50us, report.P99us = pt.P50us, pt.P99us
			report.AllocsPerOp, report.BytesPerOp = pt.AllocsPerKey, pt.BytesPerKey
			report.GCCycles = pt.GCCycles
		}
	}
	if st, err := c.Stats(); err == nil {
		report.StoreMetrics = st
	}
	if base := loadPipelineBaseline("BENCH_pipeline.json"); base != nil && report.OpsPerSec > 0 {
		report.Baseline = base
		if base.OpsPerSec > 0 {
			report.SpeedupVsBaseline = report.OpsPerSec / base.OpsPerSec
		}
	}

	w := tw()
	fmt.Fprintln(w, "batch\tops (keys)\tops/sec\tp50 (us)\tp99 (us)\tallocs/key\tbytes/key\tgc")
	for _, pt := range report.BatchSweep {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.1f\t%.1f\t%.2f\t%.1f\t%d\n",
			pt.Batch, pt.Ops, pt.OpsPerSec, pt.P50us, pt.P99us,
			pt.AllocsPerKey, pt.BytesPerKey, pt.GCCycles)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if report.Baseline != nil {
		fmt.Printf("batch=1 speedup vs %s pipelined baseline (%.0f ops/sec): %.2fx\n",
			report.Baseline.Source, report.Baseline.OpsPerSec, report.SpeedupVsBaseline)
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// driveBatchWorkers hammers batched reads from `workers` goroutines for
// the benchtime window. batch == 1 devolves to the plain single-GET
// loop (same wire path as before batching existed); batch > 1 issues
// MGETs of `batch` consecutive keys per frame. Ops counts keys served;
// sampled latencies are whole-request round trips.
func driveBatchWorkers(c *freshcache.Client, keys []string, workers, batch int, benchtime time.Duration) (transportResult, error) {
	if batch <= 1 {
		return driveWorkers(c, "hotpath", keys, workers, benchtime)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		all      []int64
		ops      int
		firstErr error
	)
	stopAt := time.Now().Add(benchtime)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]int64, 0, 1<<14)
			bk := make([]string, batch)
			n, reqs := 0, 0
			for i := w; ; i++ {
				var t0 time.Time
				timed := reqs%latSample == 0
				if timed {
					t0 = time.Now()
					if !t0.Before(stopAt) {
						break
					}
				}
				base := i * batch
				for j := 0; j < batch; j++ {
					bk[j] = keys[(base+j)%len(keys)]
				}
				res, err := c.MGet(bk)
				if err == nil && len(res) != batch {
					err = fmt.Errorf("MGET answered %d keys for %d", len(res), batch)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				n += batch
				reqs++
				if timed {
					lat = append(lat, time.Since(t0).Nanoseconds())
				}
			}
			mu.Lock()
			all = append(all, lat...)
			ops += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return transportResult{}, fmt.Errorf("hotpath batch=%d: %w", batch, firstErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / 1e3
	}
	return transportResult{
		Transport: fmt.Sprintf("hotpath-batch-%d", batch),
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		P50us:     pct(0.50),
		P99us:     pct(0.99),
	}, nil
}

// loadPipelineBaseline reads the committed pipelined-transport result
// out of a BENCH_pipeline.json, if one is readable from the working
// directory. Missing or malformed files just drop the comparison.
func loadPipelineBaseline(path string) *hotpathBaseline {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep pipelineReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil
	}
	for _, r := range rep.Results {
		if r.Transport == "pipelined" {
			return &hotpathBaseline{
				Source:    path,
				OpsPerSec: r.OpsPerSec,
				P50us:     r.P50us,
				P99us:     r.P99us,
			}
		}
	}
	return nil
}
