package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"freshcache"
)

// hotpathBaseline is the committed pre-optimization reference the
// hotpath run compares itself against: the pipelined transport's row
// from BENCH_pipeline.json (recorded before the zero-allocation work).
type hotpathBaseline struct {
	Source    string  `json:"source"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
}

// hotpathReport is the machine-readable record of one hotpath run, as
// written to BENCH_hotpath.json.
type hotpathReport struct {
	Benchmark string  `json:"benchmark"`
	Generated string  `json:"generated"`
	Workers   int     `json:"workers"`
	DurationS float64 `json:"duration_s"`
	ValueSize int     `json:"value_bytes"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	// AllocsPerOp and BytesPerOp are whole-process malloc deltas divided
	// by completed ops. Client and store share the process here, so this
	// is the full request path — encode, syscalls, demux, store lookup,
	// response — not just the client half.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// GCCycles is how many collections the measurement window triggered.
	GCCycles uint32 `json:"gc_cycles"`

	// StoreMetrics is the store's end-of-run stats snapshot (the same
	// registry /metrics renders), so a recorded run carries the server's
	// own view — hit/fill mix, malformed frames, served-age sample count.
	StoreMetrics map[string]uint64 `json:"store_metrics,omitempty"`

	Baseline          *hotpathBaseline `json:"baseline,omitempty"`
	SpeedupVsBaseline float64          `json:"speedup_vs_baseline,omitempty"`
}

// hotpathBench boots one live store on loopback and hammers GETs over
// the multiplexed transport, recording throughput, latency percentiles,
// and whole-process allocation rates. It is the acceptance benchmark
// for the zero-allocation hot-path work; pair it with the servers'
// -obs flag to see where the remaining cycles go.
func hotpathBench(workers int, benchtime time.Duration, jsonPath string) error {
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: time.Hour, ShardID: "bench"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go st.Serve(ln) //nolint:errcheck
	defer st.Close()
	addr := ln.Addr().String()

	const nkeys, valSize = 64, 128
	seed := freshcache.NewClient(addr, freshcache.ClientOptions{})
	val := make([]byte, valSize)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if _, err := seed.Put(keys[i], val); err != nil {
			seed.Close()
			return fmt.Errorf("preload: %w", err)
		}
	}
	seed.Close()

	c := freshcache.NewClient(addr, freshcache.ClientOptions{})
	defer c.Close()

	// Warm up: fill the frame/Msg/waiter pools and let the connections
	// settle so the measured window sees steady state.
	warm := time.Now().Add(benchtime / 4)
	for time.Now().Before(warm) {
		if _, _, err := c.Get(keys[0]); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	res, err := driveWorkers(c, "hotpath", keys, workers, benchtime)
	if err != nil {
		return err
	}
	runtime.ReadMemStats(&after)

	report := hotpathReport{
		Benchmark: "hotpath-get-throughput",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Workers:   workers,
		DurationS: benchtime.Seconds(),
		ValueSize: valSize,
		Ops:       res.Ops,
		OpsPerSec: res.OpsPerSec,
		P50us:     res.P50us,
		P99us:     res.P99us,
		GCCycles:  after.NumGC - before.NumGC,
	}
	if res.Ops > 0 {
		report.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
		report.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Ops)
	}
	if st, err := c.Stats(); err == nil {
		report.StoreMetrics = st
	}
	if base := loadPipelineBaseline("BENCH_pipeline.json"); base != nil {
		report.Baseline = base
		if base.OpsPerSec > 0 {
			report.SpeedupVsBaseline = report.OpsPerSec / base.OpsPerSec
		}
	}

	w := tw()
	fmt.Fprintln(w, "metric\tvalue")
	fmt.Fprintf(w, "ops\t%d\n", report.Ops)
	fmt.Fprintf(w, "ops/sec\t%.0f\n", report.OpsPerSec)
	fmt.Fprintf(w, "p50 (us)\t%.1f\n", report.P50us)
	fmt.Fprintf(w, "p99 (us)\t%.1f\n", report.P99us)
	fmt.Fprintf(w, "allocs/op (process)\t%.2f\n", report.AllocsPerOp)
	fmt.Fprintf(w, "bytes/op (process)\t%.1f\n", report.BytesPerOp)
	fmt.Fprintf(w, "gc cycles\t%d\n", report.GCCycles)
	if err := w.Flush(); err != nil {
		return err
	}
	if report.Baseline != nil {
		fmt.Printf("speedup vs %s pipelined baseline (%.0f ops/sec): %.2fx\n",
			report.Baseline.Source, report.Baseline.OpsPerSec, report.SpeedupVsBaseline)
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// loadPipelineBaseline reads the committed pipelined-transport result
// out of a BENCH_pipeline.json, if one is readable from the working
// directory. Missing or malformed files just drop the comparison.
func loadPipelineBaseline(path string) *hotpathBaseline {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep pipelineReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil
	}
	for _, r := range rep.Results {
		if r.Transport == "pipelined" {
			return &hotpathBaseline{
				Source:    path,
				OpsPerSec: r.OpsPerSec,
				P50us:     r.P50us,
				P99us:     r.P99us,
			}
		}
	}
	return nil
}
