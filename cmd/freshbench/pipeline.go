package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"freshcache"
)

// transportResult is one transport's measured serving rate and latency
// distribution, as recorded in BENCH_pipeline.json.
type transportResult struct {
	Transport string  `json:"transport"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
}

// pipelineReport is the machine-readable perf-trajectory record.
type pipelineReport struct {
	Benchmark string            `json:"benchmark"`
	Generated string            `json:"generated"`
	Workers   int               `json:"workers"`
	DurationS float64           `json:"duration_s"`
	ValueSize int               `json:"value_bytes"`
	Results   []transportResult `json:"results"`
	// Speedup is pipelined ops/sec over pooled ops/sec — the headline
	// number of the multiplexed-transport work.
	Speedup float64 `json:"speedup"`
}

// pipelineBench boots one live store on loopback and measures the
// multiplexed pipelined transport against the seed-style pooled one,
// back to back, with the same worker count. With jsonPath != "" the
// report is also written there for the recorded benchmark trajectory.
func pipelineBench(workers int, benchtime time.Duration, jsonPath string) error {
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: time.Hour, ShardID: "bench"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go st.Serve(ln) //nolint:errcheck
	defer st.Close()
	addr := ln.Addr().String()

	const nkeys, valSize = 64, 128
	seed := freshcache.NewClient(addr, freshcache.ClientOptions{})
	val := make([]byte, valSize)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if _, err := seed.Put(keys[i], val); err != nil {
			seed.Close()
			return fmt.Errorf("preload: %w", err)
		}
	}
	seed.Close()

	report := pipelineReport{
		Benchmark: "live-get-throughput",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Workers:   workers,
		DurationS: benchtime.Seconds(),
		ValueSize: valSize,
	}
	for _, mode := range []struct {
		name   string
		pooled bool
	}{{"pipelined", false}, {"pooled", true}} {
		c := freshcache.NewClient(addr, freshcache.ClientOptions{Pooled: mode.pooled})
		res, err := driveWorkers(c, mode.name, keys, workers, benchtime)
		c.Close()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
	}
	if report.Results[1].OpsPerSec > 0 {
		report.Speedup = report.Results[0].OpsPerSec / report.Results[1].OpsPerSec
	}

	w := tw()
	fmt.Fprintln(w, "transport\tops\tops/sec\tp50 (us)\tp99 (us)")
	for _, r := range report.Results {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%.1f\n", r.Transport, r.Ops, r.OpsPerSec, r.P50us, r.P99us)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("pipelined/pooled speedup: %.2fx\n", report.Speedup)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// latSample thins the latency capture to one op in 8: at hot-path rates
// two extra clock reads per op are themselves a measurable tax on the
// single-core benchmark, and percentiles over an unbiased 1-in-8 sample
// match the full distribution.
const latSample = 8

// driveWorkers hammers GETs from `workers` goroutines for the benchtime
// window, collecting sampled per-op latencies.
func driveWorkers(c *freshcache.Client, name string, keys []string, workers int, benchtime time.Duration) (transportResult, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		all      []int64
		ops      int
		firstErr error
	)
	stopAt := time.Now().Add(benchtime)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]int64, 0, 1<<14)
			n := 0
			for i := w; ; i++ {
				var t0 time.Time
				timed := n%latSample == 0
				if timed {
					t0 = time.Now()
					if !t0.Before(stopAt) {
						break
					}
				}
				if _, _, err := c.Get(keys[i%len(keys)]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				n++
				if timed {
					lat = append(lat, time.Since(t0).Nanoseconds())
				}
			}
			mu.Lock()
			all = append(all, lat...)
			ops += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return transportResult{}, fmt.Errorf("%s transport: %w", name, firstErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / 1e3
	}
	return transportResult{
		Transport: name,
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		P50us:     pct(0.50),
		P99us:     pct(0.99),
	}, nil
}
