package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"freshcache"
)

// coordFailoverReport is the machine-readable record of a
// kill-the-coordinator-leader run, alongside BENCH_failover.json.
type coordFailoverReport struct {
	Benchmark     string           `json:"benchmark"`
	Generated     string           `json:"generated"`
	TBoundMS      float64          `json:"t_bound_ms"`
	CrashBoundMS  float64          `json:"crash_bound_ms"`
	LeaderLeaseMS float64          `json:"leader_lease_ms"`
	StoreLeaseMS  float64          `json:"store_lease_ms"`
	Coordinators  int              `json:"coordinators"`
	Replicas      int              `json:"replicas"`
	Workers       int              `json:"workers"`
	Keys          int              `json:"keys"`
	DurationS     float64          `json:"duration_s"`
	KillLeaderAtS float64          `json:"kill_leader_at_s"`
	NewLeaderAtS  float64          `json:"new_leader_at_s"`
	LeaderGapMS   float64          `json:"leader_gap_ms"`
	KillStoreAtS  float64          `json:"kill_store_at_s"`
	PromotedAtS   float64          `json:"promoted_at_s"`
	PreCrashEpoch uint64           `json:"pre_crash_epoch"`
	RestoredEpoch uint64           `json:"restored_epoch"`
	RejoinedEpoch uint64           `json:"rejoined_epoch"`
	LostWrites    int              `json:"lost_writes"`
	TotalReads    int              `json:"total_reads"`
	TotalWrites   int              `json:"total_writes"`
	TotalErrors   int              `json:"total_errors"`
	Violations    int              `json:"violations"`
	Buckets       []failoverBucket `json:"buckets"`
}

// coordFailoverBench boots a 3-coordinator replicated control plane
// over a replicated (R=2) 3-store/2-cache/1-LB data plane, drives mixed
// load, kills the coordinator LEADER a third of the way in (asserting a
// follower takes over within a few leader leases), kills a STORE at two
// thirds (asserting the new leader still runs the failure detector),
// and finally restarts the killed coordinator from its data directory,
// asserting it replays its persisted log to its pre-crash ring epoch
// and then catches up to the group. Bounded staleness (≤2T through a
// store crash) and zero lost acked writes must hold throughout — the
// control plane dying must never touch the data plane's guarantee.
func coordFailoverBench(workers int, benchtime time.Duration, tBound float64, jsonPath string) error {
	T := time.Duration(tBound * float64(time.Second))
	if T <= 0 {
		T = 500 * time.Millisecond
	}
	leaderLease := 300 * time.Millisecond
	storeLease := 400 * time.Millisecond
	crashBound := 2 * T
	if benchtime < 6*T {
		benchtime = 6 * T
	}
	quiet := log.New(io.Discard, "", 0)

	listen := func() (net.Listener, string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		return ln, ln.Addr().String(), nil
	}

	// Store listeners first (the initial ring needs the addresses), then
	// the coordinator group (whose peer list needs ITS addresses before
	// any member starts), then the heartbeating stores.
	const nStores = 3
	storeLns := make([]net.Listener, nStores)
	storeAddrs := make([]string, nStores)
	for i := range storeLns {
		ln, addr, err := listen()
		if err != nil {
			return err
		}
		storeLns[i], storeAddrs[i] = ln, addr
	}

	const nCoords = 3
	coordLns := make([]net.Listener, nCoords)
	coordAddrs := make([]string, nCoords)
	dataDirs := make([]string, nCoords)
	for i := range coordLns {
		ln, addr, err := listen()
		if err != nil {
			return err
		}
		coordLns[i], coordAddrs[i] = ln, addr
		dir, err := os.MkdirTemp("", "freshbench-coord-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dataDirs[i] = dir
	}
	clusterSpec := strings.Join(coordAddrs, ",")

	coords := make([]*freshcache.Coordinator, nCoords)
	for i := range coords {
		co, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
			Stores: storeAddrs, Replicas: 2,
			LeaseInterval: storeLease, Logger: quiet,
			SelfAddr: coordAddrs[i], Peers: coordAddrs,
			DataDir: dataDirs[i], LeaderLease: leaderLease,
		})
		if err != nil {
			return err
		}
		coords[i] = co
		go co.Serve(coordLns[i]) //nolint:errcheck
		defer co.Close()
	}

	// leaderIdx polls the group for a member that claims leadership with
	// a live majority lease.
	leaderIdx := func(timeout time.Duration) (int, error) {
		deadline := time.Now().Add(timeout)
		for {
			for i, co := range coords {
				if co == nil {
					continue
				}
				if _, isLeader := co.Leader(); isLeader {
					return i, nil
				}
			}
			if time.Now().After(deadline) {
				return -1, fmt.Errorf("no coordinator leader within %v", timeout)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := leaderIdx(20 * leaderLease); err != nil {
		return fmt.Errorf("initial election: %w", err)
	}

	stores := make([]*freshcache.StoreServer, nStores)
	for i := range stores {
		stores[i] = freshcache.NewStoreServer(freshcache.StoreConfig{
			T: T, ShardID: fmt.Sprintf("shard-%d", i), Logger: quiet,
			ClusterAddr: clusterSpec, AdvertiseAddr: storeAddrs[i],
			HeartbeatInterval: storeLease / 8,
		})
		go stores[i].Serve(storeLns[i]) //nolint:errcheck
		defer stores[i].Close()
	}

	var cacheAddrs []string
	for i := 0; i < 2; i++ {
		ca, err := freshcache.NewCacheServer(freshcache.CacheConfig{
			ClusterAddr: clusterSpec, T: T, Name: fmt.Sprintf("cache-%d", i),
			Logger: quiet, WatchInterval: 25 * time.Millisecond,
			RetryInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		ln, addr, err := listen()
		if err != nil {
			return err
		}
		go ca.Serve(ln) //nolint:errcheck
		defer ca.Close()
		cacheAddrs = append(cacheAddrs, addr)
	}
	balancer, err := freshcache.NewLoadBalancer(freshcache.LBConfig{
		ClusterAddr: clusterSpec, CacheAddrs: cacheAddrs,
		WatchInterval: 25 * time.Millisecond, Logger: quiet,
	})
	if err != nil {
		return err
	}
	lbLn, lbAddr, err := listen()
	if err != nil {
		return err
	}
	go balancer.Serve(lbLn) //nolint:errcheck
	defer balancer.Close()

	// Preload and truth-track every key.
	const nkeys = 256
	keys := make([]string, nkeys)
	tru := newBenchTruth()
	seed := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if _, err := seed.Put(keys[i], []byte("0")); err != nil {
			seed.Close()
			return fmt.Errorf("preload: %w", err)
		}
		tru.recordAck(keys[i], 0)
	}
	seed.Close()

	nBuckets := int(benchtime/failoverBucketWidth) + 2
	var (
		mu      sync.Mutex
		buckets = make([]failoverBucket, nBuckets)
		acked   = make(map[string]uint64, nkeys)
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	start := time.Now()
	record := func(at time.Time, isWrite, isErr bool, staleOver time.Duration) {
		i := int(at.Sub(start) / failoverBucketWidth)
		if i < 0 || i >= nBuckets {
			return
		}
		mu.Lock()
		b := &buckets[i]
		switch {
		case isErr:
			b.Errors++
		case isWrite:
			b.Writes++
		default:
			b.Reads++
			if staleOver > 0 {
				b.Violations++
			}
		}
		mu.Unlock()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		c := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
		defer c.Close()
		seq := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			key := keys[i%len(keys)]
			_, err := c.Put(key, []byte(strconv.FormatUint(seq, 10)))
			record(time.Now(), true, err != nil, 0)
			if err == nil {
				tru.recordAck(key, seq)
				mu.Lock()
				if seq > acked[key] {
					acked[key] = seq
				}
				mu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
			defer c.Close()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				t0 := time.Now()
				v, _, err := c.Get(key)
				if err != nil {
					record(t0, false, true, 0)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				seq, perr := strconv.ParseUint(string(v), 10, 64)
				if perr != nil {
					record(t0, false, true, 0)
					continue
				}
				record(t0, false, false, tru.staleBy(key, seq, t0, crashBound))
			}
		}(w)
	}

	// ---- Phase 1 (at 1/3): kill the coordinator LEADER. ----
	third := benchtime / 3
	time.Sleep(third)
	victim, err := leaderIdx(10 * leaderLease)
	if err != nil {
		return err
	}
	preCrashEpoch := coords[victim].RingInfo().Epoch
	killLeaderAt := time.Since(start)
	coords[victim].Close()
	coords[victim] = nil

	newLeader, err := leaderIdx(20 * leaderLease)
	if err != nil {
		return fmt.Errorf("after killing leader %s: %w", coordAddrs[victim], err)
	}
	newLeaderAt := time.Since(start)
	leaderGap := newLeaderAt - killLeaderAt

	// ---- Phase 2 (at 2/3): kill a STORE; the new leader must detect
	// and fail it over exactly as a solo coordinator would. ----
	time.Sleep(2*third - time.Since(start))
	// Pick a store the ring still carries (all three are members here).
	killStoreAt := time.Since(start)
	stores[0].Close()
	promotedAt := time.Duration(0)
	deadline := time.Now().Add(10 * storeLease)
	for {
		if len(coords[newLeader].RingInfo().Nodes) == nStores-1 {
			promotedAt = time.Since(start)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("new leader never failed the dead store over (ring %v)",
				coords[newLeader].RingInfo().Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if rest := benchtime - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}
	close(stop)
	wg.Wait()

	// Lost-write audit past the crash bound.
	time.Sleep(crashBound)
	lost := 0
	audit := freshcache.NewClient(lbAddr, freshcache.ClientOptions{})
	for _, key := range keys {
		v, _, err := audit.Get(key)
		if err != nil {
			lost++
			continue
		}
		got, perr := strconv.ParseUint(string(v), 10, 64)
		mu.Lock()
		want := acked[key]
		mu.Unlock()
		if perr != nil || got < want {
			lost++
		}
	}
	audit.Close()

	// ---- Phase 3: restart the killed coordinator from its data
	// directory. Its restored ring epoch must already be at (or past —
	// it may have led a publish the survivors committed) its pre-crash
	// epoch BEFORE any network catch-up, then the group's pulses bring
	// it to the current epoch. ----
	restarted, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
		Stores: storeAddrs, Replicas: 2,
		LeaseInterval: storeLease, Logger: quiet,
		SelfAddr: coordAddrs[victim], Peers: coordAddrs,
		DataDir: dataDirs[victim], LeaderLease: leaderLease,
	})
	if err != nil {
		return fmt.Errorf("restarting coordinator %s: %w", coordAddrs[victim], err)
	}
	restoredEpoch := restarted.RingInfo().Epoch
	if restoredEpoch < preCrashEpoch {
		restarted.Close()
		return fmt.Errorf("restarted coordinator replayed to epoch %d, want >= pre-crash epoch %d",
			restoredEpoch, preCrashEpoch)
	}
	var rln net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		rln, err = net.Listen("tcp", coordAddrs[victim])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			restarted.Close()
			return fmt.Errorf("rebinding %s: %w", coordAddrs[victim], err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	go restarted.Serve(rln) //nolint:errcheck
	defer restarted.Close()
	groupEpoch := coords[newLeader].RingInfo().Epoch
	rejoined := uint64(0)
	for deadline := time.Now().Add(20 * leaderLease); ; {
		rejoined = restarted.RingInfo().Epoch
		if rejoined >= groupEpoch {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("restarted coordinator stuck at epoch %d, group at %d", rejoined, groupEpoch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	report := coordFailoverReport{
		Benchmark:     "kill-coordinator-failover",
		Generated:     time.Now().UTC().Format(time.RFC3339),
		TBoundMS:      float64(T) / float64(time.Millisecond),
		CrashBoundMS:  float64(crashBound) / float64(time.Millisecond),
		LeaderLeaseMS: float64(leaderLease) / float64(time.Millisecond),
		StoreLeaseMS:  float64(storeLease) / float64(time.Millisecond),
		Coordinators:  nCoords,
		Replicas:      2,
		Workers:       workers,
		Keys:          nkeys,
		DurationS:     time.Since(start).Seconds(),
		KillLeaderAtS: killLeaderAt.Seconds(),
		NewLeaderAtS:  newLeaderAt.Seconds(),
		LeaderGapMS:   float64(leaderGap) / float64(time.Millisecond),
		KillStoreAtS:  killStoreAt.Seconds(),
		PromotedAtS:   promotedAt.Seconds(),
		PreCrashEpoch: preCrashEpoch,
		RestoredEpoch: restoredEpoch,
		RejoinedEpoch: rejoined,
		LostWrites:    lost,
	}
	for i := range buckets {
		b := buckets[i]
		if b.Reads+b.Writes+b.Errors == 0 {
			continue
		}
		b.TSec = float64(i) * failoverBucketWidth.Seconds()
		report.Buckets = append(report.Buckets, b)
		report.TotalReads += b.Reads
		report.TotalWrites += b.Writes
		report.TotalErrors += b.Errors
		report.Violations += b.Violations
	}

	w := tw()
	fmt.Fprintln(w, "t (s)\treads\twrites\terrors\tstale>2T")
	for _, b := range report.Buckets {
		fmt.Fprintf(w, "%.1f\t%d\t%d\t%d\t%d\n", b.TSec, b.Reads, b.Writes, b.Errors, b.Violations)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("killed leader at %.2fs, new leader at %.2fs (gap %.0fms, leader lease %.0fms)\n",
		report.KillLeaderAtS, report.NewLeaderAtS, report.LeaderGapMS, report.LeaderLeaseMS)
	fmt.Printf("killed store at %.2fs, promoted at %.2fs (detection %.0fms, store lease %.0fms)\n",
		report.KillStoreAtS, report.PromotedAtS,
		(report.PromotedAtS-report.KillStoreAtS)*1000, report.StoreLeaseMS)
	fmt.Printf("restart: pre-crash epoch %d, replayed from disk to %d, caught up to %d\n",
		report.PreCrashEpoch, report.RestoredEpoch, report.RejoinedEpoch)
	fmt.Printf("totals: %d reads, %d writes, %d errors, %d reads staler than 2T, %d lost writes\n",
		report.TotalReads, report.TotalWrites, report.TotalErrors, report.Violations, report.LostWrites)
	if report.Violations > 0 || report.LostWrites > 0 {
		return fmt.Errorf("coordinator failover broke the guarantee: %d staleness violations, %d lost writes",
			report.Violations, report.LostWrites)
	}
	if leaderGap > 4*leaderLease {
		return fmt.Errorf("leader failover took %v, want within ~%v", leaderGap, 4*leaderLease)
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
