// Command cacheserver runs a freshcache cache node: a cache-aside LRU
// cache that fills misses from the store, subscribes to its batched
// invalidate/update pushes, and reports read statistics back for the
// adaptive policy (Figure 4 of the paper).
//
// Usage:
//
//	cacheserver -addr :7101 -store 127.0.0.1:7001 -t 500ms -capacity 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"freshcache"
)

func main() {
	addr := flag.String("addr", ":7101", "listen address")
	storeAddr := flag.String("store", "127.0.0.1:7001", "backing store address")
	t := flag.Duration("t", 500*time.Millisecond, "staleness bound")
	capacity := flag.Int("capacity", 100000, "resident objects (0 = unbounded)")
	name := flag.String("name", "", "cache name in subscriptions (default addr)")
	flag.Parse()

	if *name == "" {
		*name = "cache@" + *addr
	}
	srv, err := freshcache.NewCacheServer(freshcache.CacheConfig{
		StoreAddr: *storeAddr,
		Capacity:  *capacity,
		T:         *t,
		Name:      *name,
	})
	if err != nil {
		log.Fatalf("cacheserver: %v", err)
	}
	log.Printf("cacheserver %s: listening on %s, store %s, T=%v, capacity %d",
		*name, *addr, *storeAddr, *t, *capacity)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(1)
	}
}
