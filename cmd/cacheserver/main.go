// Command cacheserver runs a freshcache cache node: a cache-aside LRU
// cache that fills misses from the store shard owning each key,
// subscribes to every shard's batched invalidate/update pushes, and
// reports read statistics back to the owning shards for the adaptive
// policy (Figure 4 of the paper).
//
// Usage:
//
//	cacheserver -addr :7101 -store 127.0.0.1:7001 -t 500ms -capacity 100000
//	cacheserver -addr :7101 -stores 127.0.0.1:7001,127.0.0.1:7002 -t 500ms
//	cacheserver -addr :7101 -cluster 127.0.0.1:7301 -t 500ms
//
// With -stores the authoritative keyspace is partitioned across the
// listed store servers by consistent hashing; the cache maintains one
// subscription (and per-shard bounded-staleness fallback) per store.
//
// With -cluster the store ring comes from the cluster coordinator and
// is watched live: on a ring-epoch publish the cache swaps rings
// atomically, re-scopes its subscriptions, and stamps entries whose
// ownership moved with a publish-time + T deadline, preserving bounded
// staleness through live resharding. Under coordinator HA, -cluster
// takes the comma-separated coordinator group
// (-cluster 10.0.0.1:7301,10.0.0.2:7301,10.0.0.3:7301) and the watcher
// rotates to a surviving coordinator automatically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"freshcache"
	"freshcache/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7101", "listen address")
	storeAddr := flag.String("store", "", "single backing store address")
	stores := flag.String("stores", "", "comma-separated store shard addresses (overrides -store)")
	clusterAddr := flag.String("cluster", "", "cluster coordinator address(es), comma-separated (overrides -store/-stores)")
	t := flag.Duration("t", 500*time.Millisecond, "staleness bound")
	capacity := flag.Int("capacity", 100000, "resident objects (0 = unbounded)")
	name := flag.String("name", "", "cache name in subscriptions (default addr)")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/pprof/ on this address (e.g. 127.0.0.1:6062; empty = off)")
	slowTrace := flag.Duration("slowtrace", 0, "log traced requests at least this slow (0 = off)")
	flag.Parse()

	if *name == "" {
		*name = "cache@" + *addr
	}
	cfg := freshcache.CacheConfig{
		Capacity:           *capacity,
		T:                  *t,
		Name:               *name,
		SlowTraceThreshold: *slowTrace,
	}
	switch {
	case *clusterAddr != "":
		cfg.ClusterAddr = *clusterAddr
	case *stores != "":
		cfg.StoreAddrs = strings.Split(*stores, ",")
	case *storeAddr != "":
		cfg.StoreAddr = *storeAddr
	default:
		cfg.StoreAddr = "127.0.0.1:7001"
	}
	srv, err := freshcache.NewCacheServer(cfg)
	if err != nil {
		log.Fatalf("cacheserver: %v", err)
	}
	if *obsAddr != "" {
		obs.Serve(*obsAddr, "cacheserver", srv.Metrics(), nil)
	}
	targets := strings.Join(srv.Ring().Nodes(), ",")
	if cfg.ClusterAddr != "" {
		targets = "cluster " + cfg.ClusterAddr + " -> " + targets
	}
	log.Printf("cacheserver %s: listening on %s, stores %s, T=%v, capacity %d",
		*name, *addr, targets, *t, *capacity)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(1)
	}
}
