// Command coordserver runs the freshcache cluster coordinator: the
// control plane that versions the store ring (monotonic ring epochs),
// admits store joins and drains at runtime, and orchestrates key-range
// handoffs so the authority tier reshards live while the staleness
// bound keeps holding.
//
// Usage:
//
//	coordserver -addr :7301 -stores 127.0.0.1:7001,127.0.0.1:7002 [-vnodes 128]
//	            [-replicas 2] [-lease 2s] [-data /var/lib/freshcache/coord]
//	            [-peers 10.0.0.1:7301,10.0.0.2:7301,10.0.0.3:7301 -self 10.0.0.1:7301]
//	            [-leaderlease 1s]
//
// Caches (-cluster on cacheserver), the LB (-cluster on lbserver) and
// tooling (freshctl -cluster) bootstrap their store ring from the
// coordinator and watch it for epoch changes. Membership changes come
// from `freshctl -cluster <addr> join|drain <store>` or a storeserver
// started with -cluster -join.
//
// With -replicas R > 1 every key lives on its ring owner plus the R−1
// next distinct ring successors, primaries withhold write acks until
// the replicas hold them, and the lease-based failure detector
// promotes a dead store's replicas automatically: a store (started
// with -cluster, which makes it heartbeat) that stays silent for
// -lease is removed from the ring and its successors take over the
// arcs they already replicate.
//
// High availability: run three coordservers, each with the full group
// in -peers and its own address in -self. The group elects a leased
// leader that replicates every control-plane mutation to a majority
// before acting; followers redirect mutations to the leader, so every
// -cluster flag in the system takes the full comma-separated list and
// any single coordinator can die without operator action. -data points
// at a directory where the replicated log and election state persist,
// so a restarted coordinator rejoins at its last published ring epoch.
// -leaderlease tunes the leadership lease (and thereby the failover
// detection time for a dead leader).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"freshcache"
	"freshcache/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7301", "listen address")
	stores := flag.String("stores", "127.0.0.1:7001", "comma-separated initial store ring")
	vnodes := flag.Int("vnodes", freshcache.DefaultVirtualNodes, "virtual nodes per store")
	replicas := flag.Int("replicas", 1, "replication factor R (1 = no replication)")
	leaseIv := flag.Duration("lease", 2*time.Second, "liveness lease; a store silent this long is failed over")
	peers := flag.String("peers", "", "comma-separated full coordinator group for HA (empty = solo)")
	self := flag.String("self", "", "this coordinator's advertised address within -peers (required with -peers)")
	dataDir := flag.String("data", "", "directory persisting the replicated log and election state (empty = in-memory)")
	leaderLease := flag.Duration("leaderlease", time.Second, "coordinator leadership lease / election timeout base (with -peers)")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/pprof/ on this address (e.g. 127.0.0.1:6064; empty = off)")
	flag.Parse()

	co, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
		Stores:        strings.Split(*stores, ","),
		VirtualNodes:  *vnodes,
		Replicas:      *replicas,
		LeaseInterval: *leaseIv,
		SelfAddr:      *self,
		Peers:         freshcache.SplitCoordAddrs(*peers),
		DataDir:       *dataDir,
		LeaderLease:   *leaderLease,
	})
	if err != nil {
		log.Fatalf("coordserver: %v", err)
	}
	if *obsAddr != "" {
		obs.Serve(*obsAddr, "coordserver", co.Metrics(), nil)
	}
	if *peers != "" {
		log.Printf("coordserver: listening on %s as %s in group %s (R=%d, store lease %v, leader lease %v)",
			*addr, *self, *peers, *replicas, *leaseIv, *leaderLease)
	} else {
		log.Printf("coordserver: listening on %s over %s (R=%d, lease %v)",
			*addr, *stores, *replicas, *leaseIv)
	}
	if err := co.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "coordserver: %v\n", err)
		os.Exit(1)
	}
}
