// Command coordserver runs the freshcache cluster coordinator: the
// control plane that versions the store ring (monotonic ring epochs),
// admits store joins and drains at runtime, and orchestrates key-range
// handoffs so the authority tier reshards live while the staleness
// bound keeps holding.
//
// Usage:
//
//	coordserver -addr :7301 -stores 127.0.0.1:7001,127.0.0.1:7002 [-vnodes 128]
//	            [-replicas 2] [-lease 2s]
//
// Caches (-cluster on cacheserver), the LB (-cluster on lbserver) and
// tooling (freshctl -cluster) bootstrap their store ring from the
// coordinator and watch it for epoch changes. Membership changes come
// from `freshctl -cluster <addr> join|drain <store>` or a storeserver
// started with -cluster -join.
//
// With -replicas R > 1 every key lives on its ring owner plus the R−1
// next distinct ring successors, primaries withhold write acks until
// the replicas hold them, and the lease-based failure detector
// promotes a dead store's replicas automatically: a store (started
// with -cluster, which makes it heartbeat) that stays silent for
// -lease is removed from the ring and its successors take over the
// arcs they already replicate.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the opt-in -pprof listener only
	"os"
	"strings"
	"time"

	"freshcache"
)

func main() {
	addr := flag.String("addr", ":7301", "listen address")
	stores := flag.String("stores", "127.0.0.1:7001", "comma-separated initial store ring")
	vnodes := flag.Int("vnodes", freshcache.DefaultVirtualNodes, "virtual nodes per store")
	replicas := flag.Int("replicas", 1, "replication factor R (1 = no replication)")
	leaseIv := flag.Duration("lease", 2*time.Second, "liveness lease; a store silent this long is failed over")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6064; empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("coordserver: pprof on http://%s/debug/pprof/", *pprofAddr)
			log.Printf("coordserver: pprof server: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	co, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
		Stores:        strings.Split(*stores, ","),
		VirtualNodes:  *vnodes,
		Replicas:      *replicas,
		LeaseInterval: *leaseIv,
	})
	if err != nil {
		log.Fatalf("coordserver: %v", err)
	}
	log.Printf("coordserver: listening on %s, ring epoch 1 over %s (R=%d, lease %v)",
		*addr, *stores, *replicas, *leaseIv)
	if err := co.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "coordserver: %v\n", err)
		os.Exit(1)
	}
}
