// Command coordserver runs the freshcache cluster coordinator: the
// control plane that versions the store ring (monotonic ring epochs),
// admits store joins and drains at runtime, and orchestrates key-range
// handoffs so the authority tier reshards live while the staleness
// bound keeps holding.
//
// Usage:
//
//	coordserver -addr :7301 -stores 127.0.0.1:7001,127.0.0.1:7002 [-vnodes 128]
//
// Caches (-cluster on cacheserver), the LB (-cluster on lbserver) and
// tooling (freshctl -cluster) bootstrap their store ring from the
// coordinator and watch it for epoch changes. Membership changes come
// from `freshctl -cluster <addr> join|drain <store>` or a storeserver
// started with -cluster -join.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"freshcache"
)

func main() {
	addr := flag.String("addr", ":7301", "listen address")
	stores := flag.String("stores", "127.0.0.1:7001", "comma-separated initial store ring")
	vnodes := flag.Int("vnodes", freshcache.DefaultVirtualNodes, "virtual nodes per store")
	flag.Parse()

	co, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
		Stores:       strings.Split(*stores, ","),
		VirtualNodes: *vnodes,
	})
	if err != nil {
		log.Fatalf("coordserver: %v", err)
	}
	log.Printf("coordserver: listening on %s, ring epoch 1 over %s", *addr, *stores)
	if err := co.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "coordserver: %v\n", err)
		os.Exit(1)
	}
}
