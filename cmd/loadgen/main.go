// Command loadgen drives a live freshcache deployment with one of the
// paper's workloads, replayed in wall-clock time, and reports throughput,
// latency percentiles, hit ratio, and observed bounded-staleness
// compliance — the live counterpart of the simulator's metrics.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7201 -workload poisson -duration 10s \
//	        -rate 2000 -t 500ms -workers 8
//	loadgen -addr 127.0.0.1:7201 -stores 127.0.0.1:7001,127.0.0.1:7002 ...
//
// With -stores, writes bypass -addr and route directly to the store
// shard owning each key via the consistent-hash ring — the same routing
// the caches and the LB use — while reads keep exercising -addr.
//
// Workers share the client's multiplexed pipelined transport by default;
// -pooled selects the seed-style one-request-per-connection transport
// for before/after comparison, and -conns overrides the connection count
// of either.
//
// The staleness check: every write's value encodes its wall-clock issue
// time; a read that returns a value older than the latest write known to
// be more than T+slack old counts as a violation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"freshcache"
	"freshcache/internal/stats"
	"freshcache/internal/workload"
	"freshcache/internal/xrand"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7201", "target node (lb, cache, or store)")
	stores := flag.String("stores", "", "comma-separated store shard addresses; writes route by ring")
	wl := flag.String("workload", "poisson", "poisson|poisson-mix|meta-like|twitter-like")
	duration := flag.Duration("duration", 10*time.Second, "wall-clock run length")
	rate := flag.Float64("rate", 2000, "target requests/second")
	tBound := flag.Duration("t", 500*time.Millisecond, "staleness bound to validate against")
	conns := flag.Int("conns", 0, "client connections (0: transport default)")
	workers := flag.Int("workers", 8, "concurrent load workers")
	pooled := flag.Bool("pooled", false, "use the seed-style pooled transport instead of the pipelined one")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	var storeAddrs []string
	if *stores != "" {
		storeAddrs = strings.Split(*stores, ",")
	}
	opts := freshcache.ClientOptions{MaxConns: *conns, Pooled: *pooled}
	if err := run(*addr, storeAddrs, *wl, *duration, *rate, *tBound, *workers, opts, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

type keyState struct {
	mu      sync.Mutex
	lastVal string
	lastAt  time.Time
}

func run(addr string, storeAddrs []string, wl string, duration time.Duration, rate float64, tBound time.Duration, workers int, opts freshcache.ClientOptions, seed uint64) error {
	// Pre-generate the request sequence shape from the chosen workload
	// family (virtual inter-arrivals are replaced by the target rate).
	tr, err := workload.Standard(wl, 30, seed)
	if err != nil {
		return err
	}
	if tr.Len() == 0 {
		return errors.New("empty workload")
	}
	log.Printf("loadgen: %s against %s at %.0f req/s for %v (T=%v)", wl, addr, rate, duration, tBound)

	c := freshcache.NewClient(addr, opts)
	defer c.Close()

	// put issues a write: to -addr by default, or directly to the owning
	// store shard when -stores is given.
	put := c.Put
	if len(storeAddrs) > 0 {
		sc, err := freshcache.NewShardedClient(storeAddrs, 0, opts)
		if err != nil {
			return err
		}
		defer sc.Close()
		log.Printf("loadgen: writes route by ring across %d store shards", sc.Len())
		put = sc.Put
	}

	var (
		lat        stats.Histogram
		reads      stats.Counter
		writes     stats.Counter
		notFound   stats.Counter
		errsC      stats.Counter
		violations stats.Counter
	)
	states := make([]keyState, tr.NumKeys)
	slack := tBound / 2

	var wg sync.WaitGroup
	stopAt := time.Now().Add(duration)
	per := float64(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(seed, uint64(w)+100)
			idx := w
			for time.Now().Before(stopAt) {
				req := tr.Requests[idx%tr.Len()]
				idx += workers
				// Pace to the aggregate target rate.
				time.Sleep(time.Duration(rng.Exp(rate/per) * float64(time.Second)))
				key := fmt.Sprintf("key-%06d", req.Key)
				start := time.Now()
				if req.Op == workload.OpWrite {
					val := fmt.Sprintf("%d", start.UnixNano())
					if _, err := put(key, []byte(val)); err != nil {
						errsC.Inc()
						continue
					}
					st := &states[req.Key]
					st.mu.Lock()
					st.lastVal, st.lastAt = val, start
					st.mu.Unlock()
					writes.Inc()
				} else {
					v, _, err := c.Get(key)
					switch {
					case errors.Is(err, freshcache.ErrNotFound):
						notFound.Inc()
						continue
					case err != nil:
						errsC.Inc()
						continue
					}
					reads.Inc()
					st := &states[req.Key]
					st.mu.Lock()
					lastVal, lastAt := st.lastVal, st.lastAt
					st.mu.Unlock()
					if lastVal != "" && time.Since(lastAt) > tBound+slack && string(v) != lastVal {
						// The read returned data missing a write that is
						// older than the staleness bound.
						violations.Inc()
					}
				}
				lat.Observe(float64(time.Since(start).Microseconds()))
			}
		}(w)
	}
	wg.Wait()

	snap := lat.Snapshot()
	total := reads.Value() + writes.Value()
	fmt.Printf("requests: %d (%.0f/s)  reads=%d writes=%d not-found=%d errors=%d\n",
		total, float64(total)/duration.Seconds(), reads.Value(), writes.Value(),
		notFound.Value(), errsC.Value())
	fmt.Printf("latency (us): mean=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
		snap.Mean, snap.P50, snap.P90, snap.P99, snap.Max)
	fmt.Printf("staleness violations (> T+%v): %d\n", slack, violations.Value())
	if st, err := c.Stats(); err == nil {
		if h, ok := st["hits"]; ok {
			g := st["gets"]
			if g > 0 {
				fmt.Printf("server hit rate: %.1f%% (hits=%d gets=%d)\n",
					100*float64(h)/float64(g), h, g)
			}
		}
	}
	if violations.Value() > 0 {
		return fmt.Errorf("%d staleness violations", violations.Value())
	}
	return nil
}
