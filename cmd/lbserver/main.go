// Command lbserver runs the freshcache load balancer: reads route to a
// cache chosen by consistent-hash key affinity, writes route to the
// store shard owning the key (Figure 4).
//
// Usage:
//
//	lbserver -addr :7201 -store 127.0.0.1:7001 \
//	         -caches 127.0.0.1:7101,127.0.0.1:7102
//	lbserver -addr :7201 -stores 127.0.0.1:7001,127.0.0.1:7002 \
//	         -caches 127.0.0.1:7101,127.0.0.1:7102
//	lbserver -addr :7201 -cluster 127.0.0.1:7301 \
//	         -caches 127.0.0.1:7101,127.0.0.1:7102
//
// With -cluster the store ring comes from the cluster coordinator and
// the write path reroutes live on every published ring epoch. Under
// coordinator HA, -cluster takes the comma-separated coordinator group
// and the watcher rotates to a surviving coordinator automatically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"freshcache"
	"freshcache/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7201", "listen address")
	storeAddr := flag.String("store", "", "single backing store address")
	stores := flag.String("stores", "", "comma-separated store shard addresses (overrides -store)")
	clusterAddr := flag.String("cluster", "", "cluster coordinator address(es), comma-separated (overrides -store/-stores)")
	caches := flag.String("caches", "127.0.0.1:7101", "comma-separated cache addresses")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/pprof/ on this address (e.g. 127.0.0.1:6063; empty = off)")
	slowTrace := flag.Duration("slowtrace", 0, "log traced requests at least this slow (0 = off)")
	flag.Parse()

	cfg := freshcache.LBConfig{
		CacheAddrs:         strings.Split(*caches, ","),
		SlowTraceThreshold: *slowTrace,
	}
	switch {
	case *clusterAddr != "":
		cfg.ClusterAddr = *clusterAddr
	case *stores != "":
		cfg.StoreAddrs = strings.Split(*stores, ",")
	case *storeAddr != "":
		cfg.StoreAddr = *storeAddr
	default:
		cfg.StoreAddr = "127.0.0.1:7001"
	}
	srv, err := freshcache.NewLoadBalancer(cfg)
	if err != nil {
		log.Fatalf("lbserver: %v", err)
	}
	if *obsAddr != "" {
		obs.Serve(*obsAddr, "lbserver", srv.Metrics(), nil)
	}
	targets := strings.Join(srv.StoreRing().Nodes(), ",")
	if cfg.ClusterAddr != "" {
		targets = "cluster " + cfg.ClusterAddr + " -> " + targets
	}
	log.Printf("lbserver: listening on %s, stores %s, caches %s",
		*addr, targets, *caches)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "lbserver: %v\n", err)
		os.Exit(1)
	}
}
