// Command lbserver runs the freshcache load balancer: reads route to a
// cache chosen by key affinity, writes route to the store (Figure 4).
//
// Usage:
//
//	lbserver -addr :7201 -store 127.0.0.1:7001 \
//	         -caches 127.0.0.1:7101,127.0.0.1:7102
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"freshcache"
)

func main() {
	addr := flag.String("addr", ":7201", "listen address")
	storeAddr := flag.String("store", "127.0.0.1:7001", "backing store address")
	caches := flag.String("caches", "127.0.0.1:7101", "comma-separated cache addresses")
	flag.Parse()

	srv, err := freshcache.NewLoadBalancer(freshcache.LBConfig{
		StoreAddr:  *storeAddr,
		CacheAddrs: strings.Split(*caches, ","),
	})
	if err != nil {
		log.Fatalf("lbserver: %v", err)
	}
	log.Printf("lbserver: listening on %s, store %s, caches %s", *addr, *storeAddr, *caches)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "lbserver: %v\n", err)
		os.Exit(1)
	}
}
