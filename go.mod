module freshcache

go 1.24
