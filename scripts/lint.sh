#!/usr/bin/env bash
# Static-analysis gate: formatting, stock vet, the freshlint analyzer
# suite (tools/freshlint), and — when their pinned binaries are on PATH
# (CI installs them; offline dev boxes may not have them) — staticcheck
# and govulncheck.
#
# Exits nonzero if any section finds anything. Every finding is also
# appended to $LINT_REPORT (default lint-findings.txt) so CI can upload
# one artifact with the full list.
set -u
cd "$(dirname "$0")/.."

report="${LINT_REPORT:-lint-findings.txt}"
: >"$report"
fail=0

# section <name> <cmd...>: run a check, tee findings into the report.
section() {
  local name="$1"
  shift
  local out
  echo "==> $name"
  if out=$("$@" 2>&1); then
    [ -n "$out" ] && echo "$out"
    return 0
  fi
  status=$?
  echo "$out"
  {
    echo "== $name =="
    echo "$out"
    echo
  } >>"$report"
  fail=1
  return 0
}

# gofmt has no useful exit status; wrap it so unformatted files fail.
gofmt_check() {
  local out
  out=$(gofmt -l .)
  if [ -n "$out" ]; then
    echo "gofmt needed on:"
    echo "$out"
    return 1
  fi
}

freshlint_build() {
  (cd tools/freshlint && go build -o bin/freshlint ./cmd/freshlint)
}

# The analyzer fixtures are the suite's executable spec: run them before
# trusting the binary's verdict on the main tree.
freshlint_selftest() {
  (cd tools/freshlint && go vet ./... && go test ./...)
}

section "gofmt" gofmt_check
section "go vet" go vet ./...
section "freshlint self-test" freshlint_selftest
section "freshlint build" freshlint_build
if [ -x tools/freshlint/bin/freshlint ]; then
  section "freshlint" go vet -vettool="$PWD/tools/freshlint/bin/freshlint" ./...
fi

if command -v staticcheck >/dev/null 2>&1; then
  section "staticcheck" staticcheck ./...
else
  echo "==> staticcheck not installed; skipping (CI installs the pinned version)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  section "govulncheck" govulncheck ./...
else
  echo "==> govulncheck not installed; skipping (CI installs the pinned version)"
fi

if [ "$fail" -ne 0 ]; then
  echo
  echo "lint: findings recorded in $report"
  exit 1
fi
echo "lint: clean"
rm -f "$report"
