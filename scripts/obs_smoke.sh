#!/usr/bin/env bash
# Observability smoke test: boot a minimal cluster (coordinator, store,
# cache, LB) with -obs listeners, check every /metrics endpoint serves
# the expected families, run one traced request through the full chain,
# and take one freshctl top sample. CI runs this after the unit tests.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN" ./cmd/coordserver ./cmd/storeserver ./cmd/cacheserver ./cmd/lbserver ./cmd/freshctl

STORE=127.0.0.1:7461
CACHE=127.0.0.1:7462
LB=127.0.0.1:7463
COORD=127.0.0.1:7464
OBS_STORE=127.0.0.1:6461
OBS_CACHE=127.0.0.1:6462
OBS_LB=127.0.0.1:6463
OBS_COORD=127.0.0.1:6464

"$BIN"/coordserver -addr "$COORD" -stores "$STORE" -obs "$OBS_COORD" &
"$BIN"/storeserver -addr "$STORE" -t 200ms -obs "$OBS_STORE" -slowtrace 1ns &
"$BIN"/cacheserver -addr "$CACHE" -store "$STORE" -t 200ms -name smoke -obs "$OBS_CACHE" &
"$BIN"/lbserver -addr "$LB" -store "$STORE" -caches "$CACHE" -obs "$OBS_LB" &

wait_port() {
    for _ in $(seq 1 50); do
        if "$BIN"/freshctl -addr "$1" ping >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $1 never came up" >&2
    exit 1
}
wait_port "$STORE"; wait_port "$CACHE"; wait_port "$LB"; wait_port "$COORD"

# Traffic so the freshness telemetry has samples: a write, a cache-miss
# fill, then fresh hits — plus one batched write and read so the batch
# metric families have samples on every tier.
"$BIN"/freshctl -addr "$LB" put smoke-key hello
for _ in 1 2 3; do "$BIN"/freshctl -addr "$LB" get smoke-key >/dev/null; done
"$BIN"/freshctl -addr "$LB" mput smoke-b1=x smoke-b2=y smoke-b3=z
"$BIN"/freshctl -addr "$LB" mget smoke-b1 smoke-b2 smoke-b3 smoke-ghost >/dev/null

check_metrics() { # name obs-addr family...
    local name=$1 addr=$2; shift 2
    local body
    body=$(curl -fsS "http://$addr/metrics")
    for family in "$@"; do
        if ! grep -q "^$family" <<<"$body"; then
            echo "FAIL: $name /metrics is missing $family" >&2
            echo "$body" | head -40 >&2
            exit 1
        fi
    done
    # Every non-comment line must be "name[{labels}] value".
    if grep -vE '^(# (HELP|TYPE) |[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$)' <<<"$body" | grep -q .; then
        echo "FAIL: $name /metrics has unparseable lines:" >&2
        grep -vE '^(# (HELP|TYPE) |[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$)' <<<"$body" >&2
        exit 1
    fi
    echo "ok: $name /metrics ($(grep -c . <<<"$body") lines)"
}

check_metrics store "$OBS_STORE" \
    freshcache_store_gets_total \
    freshcache_store_served_age_ratio_bucket \
    freshcache_store_push_decisions_total \
    'freshcache_store_batch_ops_total{op="mget"}' \
    'freshcache_store_batch_ops_total{op="mput"}' \
    freshcache_store_batch_size_bucket
check_metrics cache "$OBS_CACHE" \
    freshcache_cache_hits_total \
    freshcache_cache_served_age_ratio_bucket \
    freshcache_cache_deadline_expired_total \
    freshcache_cache_near_miss_serves_total \
    freshcache_cache_fills_deduped_total \
    'freshcache_cache_batch_ops_total{op="mget"}' \
    freshcache_cache_batch_size_bucket
check_metrics lb "$OBS_LB" \
    freshcache_lb_reads_total \
    freshcache_lb_read_rtt_seconds_bucket \
    'freshcache_lb_batch_ops_total{op="mget"}' \
    'freshcache_lb_batch_ops_total{op="mput"}' \
    freshcache_lb_batch_size_bucket
check_metrics coordinator "$OBS_COORD" \
    freshcache_coord_ring_epoch \
    freshcache_coord_is_leader

# One traced round-trip through the LB. The traced PUT lands the key in
# the store only, so the traced GET that follows is a cache miss: the
# fill goes to the store and the hop tree must show all three tiers.
out=$("$BIN"/freshctl -addr "$LB" trace trace-smoke-key probe)
echo "$out"
out=$("$BIN"/freshctl -addr "$LB" trace trace-smoke-key)
echo "$out"
for hop in lb cache:smoke store:; do
    if ! grep -q "$hop" <<<"$out"; then
        echo "FAIL: traced GET is missing the $hop hop" >&2
        exit 1
    fi
done
if ! grep -q "3 hops" <<<"$out"; then
    echo "FAIL: traced cache-miss GET did not record 3 hops" >&2
    exit 1
fi

# freshctl top: one cluster-wide sample across all four obs listeners.
top=$("$BIN"/freshctl -samples 1 top "$OBS_STORE" "$OBS_CACHE" "$OBS_LB" "$OBS_COORD")
grep -q "4/4 nodes up" <<<"$top" || { echo "FAIL: freshctl top did not reach all 4 nodes" >&2; echo "$top" >&2; exit 1; }
grep -q freshcache_ <<<"$top" || { echo "FAIL: freshctl top rendered no families" >&2; exit 1; }
echo "ok: freshctl top"

echo "observability smoke: PASS"
