package stripelock_test

import (
	"testing"

	"freshcache/tools/freshlint/analysistest"
	"freshcache/tools/freshlint/stripelock"
)

func TestStripeLock(t *testing.T) {
	// Stripe-locking code lives inside package kv in the real tree
	// (authShard is unexported), so the fixture package does too.
	analysistest.Run(t, analysistest.SharedTestData(), stripelock.Analyzer, "freshcache/internal/kv")
}
