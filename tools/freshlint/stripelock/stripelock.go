// Package stripelock enforces the authority stripe-lock discipline
// from internal/kv: batch paths visit stripes one at a time in
// ascending index order (one Lock/Unlock pair per stripe, never two
// stripes held at once), and nothing that can block — a net.Conn
// write, a channel send, a time.Sleep — runs while a stripe lock is
// held. Holding a stripe across a blocking call wedges every reader
// and writer hashing to it; holding two stripes in arbitrary order
// deadlocks against a concurrent batch visiting them the other way.
package stripelock

import (
	"go/ast"
	"go/types"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/lintutil"
)

const kvPkg = "internal/kv"

// stripeOwner names the struct types whose mutexes are stripe locks.
var stripeOwner = map[string]bool{
	"authShard": true, // kv.Authority stripes
	"kvShard":   true, // kv.Cache stripes, if so named
}

// Analyzer checks stripe-lock ordering and no-blocking-while-held.
var Analyzer = &analysis.Analyzer{
	Name: "stripelock",
	Doc: `check kv authority stripe-lock ordering and blocking calls under stripe locks

Stripe locks (the per-shard mutexes inside kv.Authority) must be taken
one stripe at a time: batch paths iterate stripe indices in ascending
order, locking and unlocking each before the next. The analyzer flags a
stripe lock acquired while another is held, a stripe lock acquired in a
loop but not released in the same iteration (including defer-in-loop
unlocks, which pile every stripe up until return), descending stripe
loops, and — while any stripe lock is held — time.Sleep calls, channel
sends, and calls on net connections.`,
	Run: run,
}

type heldLock struct {
	recv string // types.ExprString of the receiver, e.g. "s.mu"
	pos  ast.Node
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		lintutil.FuncBodies(file, func(_ string, body *ast.BlockStmt) {
			var held []heldLock
			scanSeq(pass, body.List, &held, false)
		})
	}
	return nil, nil
}

// lockCall classifies call as a stripe mutex operation, returning the
// receiver expression string and which operation it is.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (recv string, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	// Receiver must be a mutex field of a stripe-owner struct:
	// <stripe>.mu.Lock() where <stripe> is an authShard.
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ownerTv, ok := pass.TypesInfo.Types[muSel.X]
	if !ok {
		return "", ""
	}
	named := lintutil.NamedOf(ownerTv.Type)
	if named == nil || !stripeOwner[named.Obj().Name()] {
		return "", ""
	}
	if named.Obj().Pkg() == nil || !lintutil.PkgPathIs(named.Obj().Pkg().Path(), kvPkg) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// scanSeq walks one statement sequence maintaining the held-lock set.
// inLoop marks sequences that are a loop body, where locks must not
// leak into the next iteration.
func scanSeq(pass *analysis.Pass, stmts []ast.Stmt, held *[]heldLock, inLoop bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, op := lockCall(pass, call); op != "" {
					switch op {
					case "Lock", "RLock":
						if len(*held) > 0 {
							pass.Reportf(s.Pos(), "stripe lock %s acquired while stripe lock %s is held: visit stripes one at a time in ascending index order", recv, (*held)[len(*held)-1].recv)
						}
						*held = append(*held, heldLock{recv: recv, pos: s})
					case "Unlock", "RUnlock":
						dropLock(held, recv)
					}
					continue
				}
			}
			if len(*held) > 0 {
				checkBlocking(pass, s, (*held)[len(*held)-1].recv)
			}
		case *ast.DeferStmt:
			if recv, op := lockCall(pass, s.Call); op == "Unlock" || op == "RUnlock" {
				if inLoop {
					pass.Reportf(s.Pos(), "deferred stripe unlock of %s inside a loop: every stripe stays locked until return; unlock within the iteration", recv)
					dropLock(held, recv) // treat as released to avoid cascading reports
				}
				// Deferred unlock at function scope: the lock stays held
				// for the rest of the body, so blocking checks continue.
				continue
			}
			if len(*held) > 0 {
				checkBlocking(pass, s, (*held)[len(*held)-1].recv)
			}
		case *ast.ForStmt:
			if len(*held) > 0 {
				checkBlocking(pass, s.Cond, (*held)[len(*held)-1].recv)
			}
			checkDescendingStripeLoop(pass, s)
			scanLoopBody(pass, s.Body, held)
		case *ast.RangeStmt:
			scanLoopBody(pass, s.Body, held)
		case *ast.IfStmt:
			branch := append([]heldLock(nil), *held...)
			scanSeq(pass, s.Body.List, &branch, inLoop)
			if s.Else != nil {
				branch = append([]heldLock(nil), *held...)
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					scanSeq(pass, e.List, &branch, inLoop)
				case *ast.IfStmt:
					scanSeq(pass, []ast.Stmt{e}, &branch, inLoop)
				}
			}
			if len(*held) > 0 {
				checkBlocking(pass, s.Cond, (*held)[len(*held)-1].recv)
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			body := switchBody(s)
			for _, cs := range body {
				branch := append([]heldLock(nil), *held...)
				scanSeq(pass, cs, &branch, inLoop)
			}
			if st, ok := s.(*ast.SelectStmt); ok && len(*held) > 0 {
				// A select blocks by construction.
				pass.Reportf(st.Pos(), "select statement while stripe lock %s is held: stripe locks must not be held across blocking operations", (*held)[len(*held)-1].recv)
			}
		case *ast.BlockStmt:
			scanSeq(pass, s.List, held, inLoop)
		case *ast.GoStmt:
			// The new goroutine holds nothing; its body is scanned as an
			// independent function body by FuncBodies.
		default:
			if len(*held) > 0 {
				checkBlocking(pass, stmt, (*held)[len(*held)-1].recv)
			}
		}
	}
}

// scanLoopBody scans a loop body with the locks held at entry and
// reports stripe locks the body acquires but does not release before
// the next iteration.
func scanLoopBody(pass *analysis.Pass, body *ast.BlockStmt, held *[]heldLock) {
	entry := len(*held)
	inner := append([]heldLock(nil), *held...)
	scanSeq(pass, body.List, &inner, true)
	for _, l := range inner[min(entry, len(inner)):] {
		pass.Reportf(l.pos.Pos(), "stripe lock %s is not released before the next loop iteration: lock and unlock each stripe within one pass", l.recv)
	}
}

// checkDescendingStripeLoop flags for-loops that walk stripe indices
// downward while locking: ascending order is the deadlock-freedom
// convention.
func checkDescendingStripeLoop(pass *analysis.Pass, s *ast.ForStmt) {
	dec, ok := s.Post.(*ast.IncDecStmt)
	if !ok || dec.Tok.String() != "--" {
		return
	}
	locks := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, op := lockCall(pass, call); op == "Lock" || op == "RLock" {
				locks = true
			}
		}
		return !locks
	})
	if locks {
		pass.Reportf(s.Pos(), "stripe locks acquired in a descending index loop: visit stripes in ascending order")
	}
}

func dropLock(held *[]heldLock, recv string) {
	for i := len(*held) - 1; i >= 0; i-- {
		if (*held)[i].recv == recv {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
}

func switchBody(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	var list []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	case *ast.SelectStmt:
		list = s.Body.List
	}
	for _, c := range list {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// checkBlocking reports blocking operations inside node (function
// literal bodies excluded — they do not run here) while a stripe lock
// is held.
func checkBlocking(pass *analysis.Pass, node ast.Node, lock string) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while stripe lock %s is held: stripe locks must not be held across blocking operations", lock)
		case *ast.CallExpr:
			fn := lintutil.Callee(pass.TypesInfo, n)
			if lintutil.IsPkgFunc(fn, "time", "Sleep") {
				pass.Reportf(n.Pos(), "time.Sleep while stripe lock %s is held: stripe locks must not be held across blocking operations", lock)
				return true
			}
			if fn != nil && fn.Pkg() != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if isNetConnType(sig.Recv().Type()) {
						pass.Reportf(n.Pos(), "call on net connection (%s.%s) while stripe lock %s is held: stripe locks must not be held across blocking operations", types.ExprString(unparenFunX(n)), fn.Name(), lock)
					}
				}
			}
		}
		return true
	})
}

func unparenFunX(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return call.Fun
}

// isNetConnType reports whether t is net.Conn or a named type declared
// in package net (after one pointer dereference).
func isNetConnType(t types.Type) bool {
	n := lintutil.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "net"
}
