package wirebounds_test

import (
	"testing"

	"freshcache/tools/freshlint/analysistest"
	"freshcache/tools/freshlint/wirebounds"
)

func TestWireBounds(t *testing.T) {
	// The second fixture package exercises the unexported proto cursor
	// decoders from inside the (stub) proto package itself.
	analysistest.Run(t, analysistest.SharedTestData(), wirebounds.Analyzer,
		"wirebounds", "freshcache/internal/proto")
}
