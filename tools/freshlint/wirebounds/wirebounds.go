// Package wirebounds guards allocation sizes decoded off the wire: an
// integer read from a frame (binary.BigEndian.Uint* or a proto cursor
// u8/u16/u32/u64 decode) is attacker-controlled, and a make/append
// sized from it before a bounds comparison lets one crafted frame
// allocate gigabytes. Every wire-derived length must be checked against
// a frame-cap constant (proto.MaxBatchOps, proto.MaxFrame, MaxNodes, a
// literal, or a trusted len()) before it sizes an allocation.
package wirebounds

import (
	"go/ast"
	"go/token"
	"go/types"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/lintutil"
)

const protoPkg = "internal/proto"

// cursorDecoders are the proto.cursor methods that yield raw wire
// integers.
var cursorDecoders = map[string]bool{
	"u8": true, "u16": true, "u32": true, "u64": true,
}

// Analyzer checks that wire-decoded integers are bounds-checked before
// sizing allocations.
var Analyzer = &analysis.Analyzer{
	Name: "wirebounds",
	Doc: `check that wire-decoded lengths are bounded before sizing make/append

Integers decoded from network frames (binary.BigEndian.Uint16/32/64,
proto cursor u8/u16/u32/u64) must be compared against a cap —
proto.MaxBatchOps, proto.MaxFrame, another named Max* constant, a
literal, or len() of trusted data — before they size a make() or an
append growth. An unchecked make([]T, n) with wire-controlled n is a
remote allocation bomb: a 20-byte frame claiming 2^32 ops.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Declared bodies only: function literals are scanned as part of
		// their enclosing declaration, sharing its taint and guard state.
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkBody(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// checkBody tracks, within one function body, which variables hold
// wire-decoded integers and at which positions each has been compared
// against a bound, then flags make() sizes that use a wire variable
// with no earlier guard.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	wire := make(map[*types.Var]token.Pos)       // var -> first decode position
	guards := make(map[*types.Var]token.Pos)     // var -> earliest guard position
	parents := make(map[*types.Var][]*types.Var) // derived var -> wire vars it came from
	assignPos := make(map[*types.Var]token.Pos)  // derived var -> defining assignment

	// Pass 1 (fixpoint): find wire variables. Direct decodes seed the
	// set; assignments/conversions from a wire variable propagate taint,
	// recording the derivation so a bound check on the source also
	// covers the derived length.
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			taint := func(lhs ast.Expr, from []*types.Var) {
				v := lintutil.VarOf(pass.TypesInfo, lhs)
				if v == nil {
					return
				}
				if _, known := wire[v]; !known {
					wire[v] = as.Pos()
					parents[v] = from
					assignPos[v] = as.Pos()
					grew = true
				}
			}
			// n, err := c.u32(): multi-value decode taints the first LHS.
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isDecodeCall(pass, call) {
					taint(as.Lhs[0], nil)
				}
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if exprIsWire(pass, rhs, wire) {
					taint(as.Lhs[i], wireVarsIn(pass, rhs, wire))
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	if len(wire) == 0 {
		return
	}

	// Pass 2: record guard positions — any comparison mentioning a wire
	// variable counts (the repo convention is `if n > MaxBatchOps { return err }`
	// or `if int(n) > len(buf)`; distinguishing guard polarity is more
	// noise than safety here, the invariant is "a bound was consulted").
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for v := range wire {
			if lintutil.UsesVar(pass.TypesInfo, be, v) {
				if g, ok := guards[v]; !ok || be.Pos() < g {
					guards[v] = be.Pos()
				}
			}
		}
		return true
	})

	// Pass 3: flag unguarded allocation sizes. A variable is guarded at
	// position P if it was compared before P, or if every wire variable
	// it derives from was guarded before its defining assignment.
	var guardedAt func(v *types.Var, p token.Pos, seen map[*types.Var]bool) bool
	guardedAt = func(v *types.Var, p token.Pos, seen map[*types.Var]bool) bool {
		if seen[v] {
			return false
		}
		seen[v] = true
		if g, ok := guards[v]; ok && g < p {
			return true
		}
		from := parents[v]
		if len(from) == 0 {
			return false
		}
		def := assignPos[v]
		for _, parent := range from {
			if !guardedAt(parent, def, seen) {
				return false
			}
		}
		return true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "make" {
			return true
		}
		for _, sz := range call.Args[1:] { // len and cap arguments
			for _, v := range wireVarsIn(pass, sz, wire) {
				if guardedAt(v, sz.Pos(), map[*types.Var]bool{}) {
					continue
				}
				pass.Reportf(sz.Pos(), "make sized by wire-decoded %s with no earlier bound check: compare against MaxBatchOps/MaxFrame (or another cap) before allocating", v.Name())
			}
		}
		return true
	})
}

// wireVarsIn returns the distinct wire variables referenced in expr.
func wireVarsIn(pass *analysis.Pass, expr ast.Expr, wire map[*types.Var]token.Pos) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		if _, isWire := wire[v]; isWire {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// exprIsWire reports whether expr produces a wire-decoded integer:
// a decode call, a conversion of one, arithmetic over one, or a read of
// an already-tainted variable.
func exprIsWire(pass *analysis.Pass, expr ast.Expr, wire map[*types.Var]token.Pos) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if isDecodeCall(pass, e) {
			return true
		}
		// Conversion like int(n) or uint64(n): single-argument call whose
		// callee is a type.
		if len(e.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return exprIsWire(pass, e.Args[0], wire)
			}
		}
		return false
	case *ast.BinaryExpr:
		return exprIsWire(pass, e.X, wire) || exprIsWire(pass, e.Y, wire)
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		_, tainted := wire[v]
		return tainted
	}
	return false
}

// isDecodeCall matches binary.BigEndian.Uint16/32/64(...) and proto
// cursor decode methods c.u8()/u16()/u32()/u64().
func isDecodeCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Uint16", "Uint32", "Uint64":
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			return true
		}
	}
	if !cursorDecoders[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := lintutil.NamedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "cursor" || named.Obj().Pkg() == nil {
		return false
	}
	return lintutil.PkgPathIs(named.Obj().Pkg().Path(), protoPkg)
}
