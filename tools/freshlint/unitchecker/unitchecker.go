// Package unitchecker implements the command-line protocol the go
// command speaks to vet tools (go vet -vettool=...): answer -V=full
// with a content-addressed build ID, answer -flags with the supported
// flag set, and analyze one compilation unit per *.cfg argument.
//
// It is a dependency-free reimplementation of the x/tools package of
// the same name (see the analysis package for why), minus facts: the
// go command hands each dependency package to the tool in VetxOnly
// mode purely to produce fact files, so for freshlint's fact-free
// analyzers those runs are answered immediately with an empty output
// file and no type-checking.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/checker"
)

// Config is the JSON the go command writes to describe one compilation
// unit. Field set and meaning match cmd/go's internal vet config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vet-tool protocol over os.Args for the given analyzers
// and exits. Exit status: 0 clean, 1 internal error, 2 findings —
// mirroring x/tools so go vet treats findings as failures.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	if len(args) == 0 {
		describe(progname, analyzers)
		os.Exit(1)
	}

	var cfgFile string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Println(buildIDLine(progname))
			os.Exit(0)
		case arg == "-V" || arg == "--V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags: the go command passes user vet
			// flags through only if this list declares them.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-h" || arg == "-help" || arg == "--help":
			describe(progname, analyzers)
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		default:
			// Tolerate unknown pass-through flags (-json etc. are never
			// sent unless declared in -flags, but be lenient).
			if !strings.HasPrefix(arg, "-") {
				fmt.Fprintf(os.Stderr, "%s: unexpected argument %q\n", progname, arg)
				os.Exit(1)
			}
		}
	}
	if cfgFile == "" {
		describe(progname, analyzers)
		os.Exit(1)
	}

	findings, err := runUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Posn, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func describe(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s is a freshcache-specific static analysis suite.\n", progname)
	fmt.Fprintf(os.Stderr, "Usage (via the go command): go vet -vettool=$(realpath %s) ./...\n\nAnalyzers:\n", progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
	}
}

// buildIDLine answers -V=full in the form the go command's buildid
// parser accepts for development tools: the executable's content hash
// keys vet's result cache, so rebuilding freshlint with changed
// analyzers invalidates prior runs.
func buildIDLine(progname string) string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel freshlint buildID=%x", progname, h.Sum(nil))
}

func runUnit(cfgFile string, analyzers []*analysis.Analyzer) ([]checker.Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// Fact-file production for dependencies: freshlint has no facts, so
	// just satisfy the protocol with an empty output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports through the export data the go command already
	// compiled: ImportMap maps source-level paths to canonical package
	// paths, PackageFile maps those to export data files. The stdlib gc
	// importer handles the archive/export format.
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Error:    func(error) {}, // collect into err below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	return checker.Run(fset, files, pkg, info, analyzers)
}
