module freshcache/tools/freshlint

go 1.24
