package borrowedview_test

import (
	"testing"

	"freshcache/tools/freshlint/analysistest"
	"freshcache/tools/freshlint/borrowedview"
)

func TestBorrowedView(t *testing.T) {
	analysistest.Run(t, analysistest.SharedTestData(), borrowedview.Analyzer, "borrowedview")
}
