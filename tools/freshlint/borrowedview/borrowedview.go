// Package borrowedview enforces the borrowed-buffer contract on the
// zero-copy serving path: byte slices lent by kv.Authority.GetView /
// GetViewAged / GetViewAgedBatch are the authority's own entry buffers,
// and proto.SharedFrame.Bytes is a refcounted frame's backing array. A
// caller that mutates one corrupts the stored value for every future
// reader; a caller that stows one in a struct, global, map, or channel
// lets it outlive the borrow (the frame is recycled on Release, the
// entry buffer's immutability promise only covers the lending scope).
package borrowedview

import (
	"go/ast"
	"go/types"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/lintutil"
)

const (
	kvPkg    = "internal/kv"
	protoPkg = "internal/proto"
)

// Analyzer checks that borrowed view buffers neither escape nor mutate.
var Analyzer = &analysis.Analyzer{
	Name: "borrowedview",
	Doc: `check that borrowed buffers from GetView/EncodeShared never escape or mutate

Values returned by kv.Authority.GetView/GetViewAged (and lent to the
GetViewAgedBatch callback) and by proto.SharedFrame.Bytes are borrowed:
they may flow into serve/flush calls within the scope, but must not be
written through (index assignment, copy destination, append) and must
not be stored into struct fields, package-level variables, map or slice
elements, or sent on channels. Paths that need an owned copy must use
Authority.Get, or copy explicitly.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	borrowed := collectBorrowed(pass)
	if len(borrowed) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkUses(pass, file, borrowed)
	}
	return nil, nil
}

// collectBorrowed finds every variable bound to a borrowed buffer:
//
//	value, ver, ok := auth.GetView(key)            // value borrowed
//	value, ver, w, ok := auth.GetViewAged(key)     // value borrowed
//	auth.GetViewAgedBatch(keys, func(i int, value []byte, ...) {...})
//	b := frame.Bytes()                             // b borrowed
func collectBorrowed(pass *analysis.Pass) map[*types.Var]string {
	borrowed := make(map[*types.Var]string)
	mark := func(expr ast.Expr, what string) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			borrowed[v] = what
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := lintutil.Callee(pass.TypesInfo, call)
				switch {
				case lintutil.IsMethod(fn, kvPkg, "Authority", "GetView"),
					lintutil.IsMethod(fn, kvPkg, "Authority", "GetViewAged"):
					mark(n.Lhs[0], "Authority."+fn.Name())
				case lintutil.IsMethod(fn, protoPkg, "SharedFrame", "Bytes"):
					mark(n.Lhs[0], "SharedFrame.Bytes")
				}
			case *ast.CallExpr:
				fn := lintutil.Callee(pass.TypesInfo, n)
				if lintutil.IsMethod(fn, kvPkg, "Authority", "GetViewAgedBatch") && len(n.Args) == 2 {
					if fl, ok := ast.Unparen(n.Args[1]).(*ast.FuncLit); ok {
						params := fl.Type.Params.List
						// func(i int, value []byte, version uint64, written time.Time, ok bool)
						var flat []*ast.Ident
						for _, p := range params {
							flat = append(flat, p.Names...)
						}
						if len(flat) >= 2 {
							mark(flat[1], "Authority.GetViewAgedBatch value")
						}
					}
				}
			}
			return true
		})
	}
	return borrowed
}

func checkUses(pass *analysis.Pass, file *ast.File, borrowed map[*types.Var]string) {
	isBorrowed := func(expr ast.Expr) (*types.Var, string, bool) {
		v := lintutil.VarOf(pass.TypesInfo, expr)
		if v == nil {
			return nil, "", false
		}
		what, ok := borrowed[v]
		return v, what, ok
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// Mutation: view[i] = x writes the authority's buffer.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if v, what, ok := isBorrowed(ix.X); ok {
						pass.Reportf(ix.Pos(), "write into borrowed %s buffer %s: the view is immutable; use a copying accessor", what, v.Name())
					}
				}
				// Escape: field/global/element stores outlive the borrow.
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					if v, what, ok := isBorrowed(n.Rhs[i]); ok {
						switch tgt := ast.Unparen(lhs).(type) {
						case *ast.SelectorExpr:
							pass.Reportf(n.Rhs[i].Pos(), "borrowed %s buffer %s stored in a struct field: it must not outlive the lending scope; copy it first", what, v.Name())
						case *ast.IndexExpr:
							pass.Reportf(n.Rhs[i].Pos(), "borrowed %s buffer %s stored in a map or slice element: it must not outlive the lending scope; copy it first", what, v.Name())
						case *ast.Ident:
							if obj, ok := pass.TypesInfo.Uses[tgt].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
								pass.Reportf(n.Rhs[i].Pos(), "borrowed %s buffer %s stored in package-level variable %s: it must not outlive the lending scope; copy it first", what, v.Name(), tgt.Name)
							}
						}
					}
				}
			}
		case *ast.SendStmt:
			if v, what, ok := isBorrowed(n.Value); ok {
				pass.Reportf(n.Value.Pos(), "borrowed %s buffer %s sent on a channel: the receiver outlives the borrow; copy it first", what, v.Name())
			}
		case *ast.CallExpr:
			fn, _ := ast.Unparen(n.Fun).(*ast.Ident)
			if fn == nil || len(n.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
				return true
			}
			switch fn.Name {
			case "copy":
				if v, what, ok := isBorrowed(n.Args[0]); ok {
					pass.Reportf(n.Args[0].Pos(), "copy into borrowed %s buffer %s: the view is immutable; use a copying accessor", what, v.Name())
				}
			case "append":
				if v, what, ok := isBorrowed(n.Args[0]); ok {
					pass.Reportf(n.Args[0].Pos(), "append to borrowed %s buffer %s may write its backing array: build a fresh slice instead", what, v.Name())
				}
			}
		}
		return true
	})
}
