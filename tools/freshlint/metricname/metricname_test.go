package metricname_test

import (
	"testing"

	"freshcache/tools/freshlint/analysistest"
	"freshcache/tools/freshlint/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysistest.SharedTestData(), metricname.Analyzer, "metricname")
}
