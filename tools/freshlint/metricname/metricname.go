// Package metricname lint-checks every metric registered on
// stats.Registry against the repository's Prometheus naming
// conventions, so the exposition stays queryable with one consistent
// vocabulary: snake_case names under the freshcache_ prefix, _total on
// counters, base units only (_seconds, never _ms), labels drawn from a
// fixed set, and non-empty help strings.
package metricname

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/lintutil"
)

const statsPkg = "internal/stats"

// Analyzer checks metric names, labels, and help strings at
// registration sites.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: `check stats.Registry metric names against Prometheus conventions

Every name registered on stats.Registry must be resolvable to a
compile-time constant (directly or through the prefix-closure idiom
used by buildRegistry), match ^[a-z][a-z0-9_]*$ with no "__" runs,
carry the freshcache_ prefix, end in _total iff it is a counter, use
base units (_seconds/_bytes/_ratio/_size — never _ms/_us/_ns), avoid
the reserved _bucket/_sum/_count suffixes, draw label names from the
fixed repository set, and have non-empty help. Test files are exempt:
they intentionally register odd names (the fc_test_ namespace) to
exercise the renderer.`,
	Run: run,
}

// registryMethods maps each Registry registration method to the metric
// kind it creates and where its label-name argument sits (-1 none;
// labelsAt is a []string composite for Labeled*, a single string for
// GaugeVec).
var registryMethods = map[string]struct {
	kind     string // "counter", "gauge", "histogram"
	labelsAt int
	vecLabel bool // labelsAt is one string, not a []string literal
}{
	"Counter":          {"counter", -1, false},
	"LabeledCounter":   {"counter", 2, false},
	"CounterFunc":      {"counter", -1, false},
	"Gauge":            {"gauge", -1, false},
	"LabeledGauge":     {"gauge", 2, false},
	"GaugeVec":         {"gauge", 2, true},
	"Histogram":        {"histogram", -1, false},
	"LabeledHistogram": {"histogram", 2, false},
}

// labelAllowlist is the fixed label vocabulary. Adding a label here is
// a deliberate schema change, reviewed like one.
var labelAllowlist = map[string]bool{
	"op":     true, // batch operation: mget, mput
	"kind":   true, // miss cause: stale, cold
	"action": true, // push decision: invalidate, update
	"store":  true, // store address
	"addr":   true, // peer address
	"change": true, // pending membership change id
	"node":   true, // cluster node id
	"result": true, // ok / error outcome
}

var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// histogramUnits are the accepted histogram name suffixes: every
// histogram measures seconds, bytes, a ratio, or a size distribution.
var histogramUnits = []string{"_seconds", "_bytes", "_ratio", "_size"}

// wrapper records the prefix-closure idiom:
//
//	counter := func(name, help, key string, c *stats.Counter) {
//	    r.Counter("freshcache_cache_"+name, help, key, c)
//	}
//
// Calls to counter("gets_total", ...) are then checked with the full
// concatenated name.
type wrapper struct {
	kind    string
	prefix  string
	nameArg int // wrapper parameter index concatenated after prefix
	helpArg int // wrapper parameter index forwarded as help, or -1
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The stats package itself is the sink: its exported methods forward
	// name parameters to each other, which is not a registration site.
	if lintutil.PkgPathIs(pass.Pkg.Path(), statsPkg) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		wrappers := collectWrappers(pass, file)
		checkCalls(pass, file, wrappers)
	}
	return nil, nil
}

func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

// registryMethod resolves call to a stats.Registry registration method.
func registryMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if _, ok := registryMethods[fn.Name()]; !ok {
		return "", false
	}
	if !lintutil.IsMethod(fn, statsPkg, "Registry", fn.Name()) {
		return "", false
	}
	return fn.Name(), true
}

// collectWrappers finds local closures that wrap a registry method with
// a constant name prefix.
func collectWrappers(pass *analysis.Pass, file *ast.File) map[*types.Var]wrapper {
	wrappers := make(map[*types.Var]wrapper)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		fl, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		wv := lintutil.VarOf(pass.TypesInfo, as.Lhs[0])
		if wv == nil {
			return true
		}
		// Map the closure's parameters to their positions.
		paramIdx := make(map[*types.Var]int)
		i := 0
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					paramIdx[v] = i
				}
				i++
			}
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryMethod(pass, call)
			if !ok || len(call.Args) < 2 {
				return true
			}
			// Name argument must be <const prefix> + <param>.
			be, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
			if !ok || be.Op != token.ADD {
				return true
			}
			prefix, ok := lintutil.ConstString(pass.TypesInfo, be.X)
			if !ok {
				return true
			}
			nv := lintutil.VarOf(pass.TypesInfo, be.Y)
			if nv == nil {
				return true
			}
			nameArg, isParam := paramIdx[nv]
			if !isParam {
				return true
			}
			helpArg := -1
			if hv := lintutil.VarOf(pass.TypesInfo, call.Args[1]); hv != nil {
				if idx, ok := paramIdx[hv]; ok {
					helpArg = idx
				}
			}
			wrappers[wv] = wrapper{
				kind:    registryMethods[method].kind,
				prefix:  prefix,
				nameArg: nameArg,
				helpArg: helpArg,
			}
			return true
		})
		return true
	})
	return wrappers
}

// checkCalls validates direct registry registrations and wrapper calls.
func checkCalls(pass *analysis.Pass, file *ast.File, wrappers map[*types.Var]wrapper) {
	// Registry calls inside wrapper closures are validated at the
	// wrapper's call sites instead (the name is completed there).
	inWrapper := make(map[*ast.CallExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if wv := lintutil.VarOf(pass.TypesInfo, as.Lhs[0]); wv != nil {
			if _, isWrapper := wrappers[wv]; isWrapper {
				ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						if _, ok := registryMethod(pass, c); ok {
							inWrapper[c] = true
						}
					}
					return true
				})
			}
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// Wrapper call site: complete the name with the recorded prefix.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				if w, ok := wrappers[v]; ok {
					name, cok := "", false
					if w.nameArg < len(call.Args) {
						name, cok = lintutil.ConstString(pass.TypesInfo, call.Args[w.nameArg])
					}
					if !cok {
						pass.Reportf(call.Pos(), "metric name passed to %s is not a compile-time constant", id.Name)
						return true
					}
					help, hok := "", true
					if w.helpArg >= 0 && w.helpArg < len(call.Args) {
						help, hok = lintutil.ConstString(pass.TypesInfo, call.Args[w.helpArg])
					}
					checkName(pass, call.Args[w.nameArg].Pos(), w.prefix+name, w.kind)
					if hok && help == "" {
						pass.Reportf(call.Pos(), "metric %s%s registered with empty help text", w.prefix, name)
					}
					return true
				}
			}
		}

		method, ok := registryMethod(pass, call)
		if !ok || inWrapper[call] || len(call.Args) < 2 {
			return true
		}
		spec := registryMethods[method]
		name, cok := lintutil.ConstString(pass.TypesInfo, call.Args[0])
		if !cok {
			pass.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s is not a compile-time constant: use a literal or the prefix-closure idiom", method)
			return true
		}
		checkName(pass, call.Args[0].Pos(), name, spec.kind)
		if help, ok := lintutil.ConstString(pass.TypesInfo, call.Args[1]); ok && help == "" {
			pass.Reportf(call.Args[1].Pos(), "metric %s registered with empty help text", name)
		}
		checkLabels(pass, call, spec.labelsAt, spec.vecLabel)
		return true
	})
}

func checkLabels(pass *analysis.Pass, call *ast.CallExpr, labelsAt int, vecLabel bool) {
	if labelsAt < 0 || labelsAt >= len(call.Args) {
		return
	}
	arg := call.Args[labelsAt]
	if vecLabel {
		if l, ok := lintutil.ConstString(pass.TypesInfo, arg); ok {
			checkLabel(pass, arg.Pos(), l)
		}
		return
	}
	cl, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return // nil labelNames, or passed through a variable
	}
	for _, elt := range cl.Elts {
		if l, ok := lintutil.ConstString(pass.TypesInfo, elt); ok {
			checkLabel(pass, elt.Pos(), l)
		}
	}
}

func checkLabel(pass *analysis.Pass, pos token.Pos, label string) {
	if !labelAllowlist[label] {
		pass.Reportf(pos, "metric label %q is not in the fixed label set (op, kind, action, store, addr, change, node, result): reusing an existing label keeps dashboards joinable", label)
	}
}

func checkName(pass *analysis.Pass, pos token.Pos, name, kind string) {
	if !nameRe.MatchString(name) {
		pass.Reportf(pos, "metric name %q is not snake_case (^[a-z][a-z0-9_]*$)", name)
		return
	}
	if strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		pass.Reportf(pos, "metric name %q has empty name segments (doubled or trailing underscore)", name)
		return
	}
	if !strings.HasPrefix(name, "freshcache_") {
		pass.Reportf(pos, "metric name %q lacks the freshcache_ namespace prefix", name)
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			pass.Reportf(pos, "metric name %q ends with reserved suffix %s (histogram exposition appends it)", name, suf)
			return
		}
	}
	for _, suf := range []string{"_ms", "_us", "_ns", "_millis", "_micros", "_nanos"} {
		if strings.HasSuffix(name, suf) {
			pass.Reportf(pos, "metric name %q uses a non-base unit: durations are exposed in seconds (_seconds)", name)
			return
		}
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix marks counters)", name)
		}
	case "histogram":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "histogram %q must not end in _total (that suffix marks counters)", name)
			return
		}
		okUnit := false
		for _, suf := range histogramUnits {
			if strings.HasSuffix(name, suf) {
				okUnit = true
				break
			}
		}
		if !okUnit {
			pass.Reportf(pos, "histogram %q must carry a unit suffix (_seconds, _bytes, _ratio, or _size)", name)
		}
	}
}
