// Package analysistest runs an analyzer over GOPATH-layout fixture
// packages under an analyzer's testdata/src directory and checks its
// diagnostics against // want "regexp" comments, mirroring the x/tools
// package of the same name (see the analysis package for why this is a
// local reimplementation).
//
// Fixture packages live at testdata/src/<importpath>/*.go and may
// import each other by that path (e.g. a fixture package can import
// "freshcache/internal/proto" resolved to
// testdata/src/freshcache/internal/proto) — so fixtures exercise the
// exact package paths and type names the analyzers match against the
// real repository. Standard-library imports are type-checked from
// GOROOT source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/checker"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// SharedTestData returns the module-level testdata directory shared by
// every analyzer's tests (one fixture tree, so the freshcache/internal
// stub packages are written once).
func SharedTestData() string {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes each fixture package under testdata/src and reports any
// mismatch between produced diagnostics and // want expectations as
// test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loaded),
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "source", nil)

	target, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture package %s: %v", pkgpath, err)
	}

	findings, err := checker.Run(ld.fset, target.files, target.pkg, target.info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants, err := parseWants(ld.fset, target.files)
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != f.Posn.Filename || w.line != f.Posn.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", f.Posn, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture-local imports
// recursively and everything else through the GOROOT source importer.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*loaded
	stdlib   types.Importer
	stack    []string
}

func (ld *loader) load(path string) (*loaded, error) {
	if p, ok := ld.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s: %v", path, ld.stack)
		}
		return p, nil
	}
	ld.pkgs[path] = nil // cycle marker
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: (*chainImporter)(ld)}
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loaded{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = p
	return p, nil
}

// chainImporter resolves fixture-local packages first, then delegates
// to the GOROOT source importer.
type chainImporter loader

func (c *chainImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(c)
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.stdlib.Import(path)
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func parseWants(fset *token.FileSet, files []*ast.File) ([]want, error) {
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' {
						return nil, fmt.Errorf("%s: malformed want pattern %q (want quoted regexps)", posn, rest)
					}
					end := 1
					for end < len(rest) {
						if rest[end] == '\\' {
							end += 2
							continue
						}
						if rest[end] == '"' {
							break
						}
						end++
					}
					if end >= len(rest) {
						return nil, fmt.Errorf("%s: unterminated want pattern %q", posn, rest)
					}
					lit := rest[:end+1]
					rest = strings.TrimSpace(rest[end+1:])
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", posn, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", posn, lit, err)
					}
					wants = append(wants, want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
