// Command freshlint is the freshcache static-analysis suite, run as a
// vet tool:
//
//	go build -o bin/freshlint ./cmd/freshlint   (from tools/freshlint)
//	go vet -vettool=$PWD/tools/freshlint/bin/freshlint ./...
//
// It bundles the five repository analyzers — msgpool, borrowedview,
// stripelock, wirebounds, metricname — behind the cmd/go vet driver
// protocol (see the unitchecker package). False positives are
// suppressed in place with a //freshlint:ignore <analyzer> <reason>
// directive on or immediately above the flagged line.
package main

import (
	"freshcache/tools/freshlint/borrowedview"
	"freshcache/tools/freshlint/metricname"
	"freshcache/tools/freshlint/msgpool"
	"freshcache/tools/freshlint/stripelock"
	"freshcache/tools/freshlint/unitchecker"
	"freshcache/tools/freshlint/wirebounds"
)

func main() {
	unitchecker.Main(
		msgpool.Analyzer,
		borrowedview.Analyzer,
		stripelock.Analyzer,
		wirebounds.Analyzer,
		metricname.Analyzer,
	)
}
