// Package time is a minimal fixture stub so analyzer tests type-check
// hermetically without importing GOROOT source.
package time

type Duration int64

const (
	Millisecond Duration = 1_000_000
	Second      Duration = 1000 * Millisecond
)

type Time struct{ _ int64 }

func (t Time) Sub(u Time) Duration { return 0 }
func (t Time) IsZero() bool        { return false }

func Now() Time             { return Time{} }
func Sleep(d Duration)      {}
func Since(t Time) Duration { return 0 }
