// Package sync is a minimal fixture stub so analyzer tests type-check
// hermetically without importing GOROOT source.
package sync

type Mutex struct{ _ int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ _ int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
