// msgpool analyzer fixtures: pooled Msg lifecycle violations and the
// blessed ownership shapes.
package msgpool

import "freshcache/internal/proto"

func useAfterReleaseBad() string {
	m := proto.GetMsg()
	m.Key = "k"
	proto.PutMsg(m)
	return m.Key // want "use of pooled Msg m after PutMsg"
}

func doubleReleaseBad() {
	m := proto.GetMsg()
	proto.PutMsg(m)
	proto.PutMsg(m) // want "use of pooled Msg m after PutMsg" "released twice"
}

func leakBad() {
	m := proto.GetMsg() // want "never released"
	m.Type = 1
	m.Key = "k"
}

func copyOutGood() string {
	m := proto.GetMsg()
	m.Key = "k"
	key := m.Key
	proto.PutMsg(m)
	return key
}

func useAfterHandoffBad(q chan proto.Outgoing) uint64 {
	m := proto.GetMsg()
	q <- proto.Outgoing{Msg: m, Pooled: true}
	return m.Seq // want "use of pooled Msg m after PutMsg"
}

func handoffGood(q chan proto.Outgoing) {
	m := proto.GetMsg()
	m.Type = 2
	q <- proto.Outgoing{Msg: m, Pooled: true}
}

func returnGood() *proto.Msg {
	m := proto.GetMsg()
	m.Type = 3
	return m
}

func rebindGood() {
	m := proto.GetMsg()
	proto.PutMsg(m)
	m = proto.GetMsg()
	m.Type = 4
	proto.PutMsg(m)
}

func escapeToCalleeGood(sink func(*proto.Msg)) {
	m := proto.GetMsg()
	sink(m)
}
