// Package net is a minimal fixture stub so analyzer tests type-check
// hermetically without importing GOROOT source.
package net

type Conn interface {
	Read(b []byte) (n int, err error)
	Write(b []byte) (n int, err error)
	Close() error
}

type TCPConn struct{ _ int }

func (c *TCPConn) Read(b []byte) (int, error)  { return 0, nil }
func (c *TCPConn) Write(b []byte) (int, error) { return 0, nil }
func (c *TCPConn) Close() error                { return nil }
