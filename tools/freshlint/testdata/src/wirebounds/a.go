// wirebounds analyzer fixtures: allocation sizes decoded off the wire
// with binary.BigEndian, with and without bound checks.
package wirebounds

import (
	"encoding/binary"

	"freshcache/internal/proto"
)

func unguardedBad(frame []byte) []string {
	n := binary.BigEndian.Uint32(frame)
	return make([]string, n) // want "make sized by wire-decoded n with no earlier bound check"
}

func guardedGood(frame []byte) []string {
	n := binary.BigEndian.Uint32(frame)
	if n > proto.MaxBatchOps {
		return nil
	}
	return make([]string, n)
}

func unguardedCapBad(frame []byte) []byte {
	sz := binary.BigEndian.Uint64(frame)
	return make([]byte, 0, sz) // want "make sized by wire-decoded sz with no earlier bound check"
}

func derivedBad(frame []byte) []uint16 {
	n := int(binary.BigEndian.Uint16(frame))
	count := n * 2
	return make([]uint16, count) // want "make sized by wire-decoded count with no earlier bound check"
}

func derivedGood(frame []byte) []uint16 {
	n := int(binary.BigEndian.Uint16(frame))
	if n > proto.MaxNodes {
		return nil
	}
	count := n * 2
	return make([]uint16, count)
}

func lenGuardGood(frame, payload []byte) [][]byte {
	n := binary.BigEndian.Uint32(frame)
	if int(n) > len(payload) {
		return nil
	}
	return make([][]byte, n)
}

func untaintedGood(count int) []string {
	return make([]string, count)
}
