// metricname analyzer fixtures: registration-site naming violations
// and the blessed direct and prefix-closure shapes.
package metricname

import "freshcache/internal/stats"

var (
	gets   stats.Counter
	misses stats.Counter
	rtt    stats.Histogram
)

func directGood(r *stats.Registry) {
	r.Counter("freshcache_fix_gets_total", "GET requests served.", "gets", &gets)
	r.LabeledCounter("freshcache_fix_misses_total", "GET misses by cause.",
		[]string{"kind"}, []string{"stale"}, "stale_misses", &misses)
	r.Gauge("freshcache_fix_resident", "Resident entries.", "resident", func() float64 { return 0 })
	r.Histogram("freshcache_fix_fill_rtt_seconds", "Miss-fill latency.",
		stats.LatencySecondsBuckets, 1e9, "", &rtt)
	r.GaugeVec("freshcache_fix_lease_age_seconds", "Seconds since each store's lease renewal.",
		"store", "lease_age[%s]", func() map[string]float64 { return nil })
}

func counterSuffixBad(r *stats.Registry) {
	r.Counter("freshcache_fix_gets", "GET requests served.", "", &gets) // want "must end in _total"
}

func gaugeSuffixBad(r *stats.Registry) {
	r.Gauge("freshcache_fix_resident_total", "Resident entries.", "", func() float64 { return 0 }) // want "must not end in _total"
}

func unitBad(r *stats.Registry) {
	r.GaugeVec("freshcache_fix_lease_age_ms", "Milliseconds since lease renewal.", // want "non-base unit"
		"store", "lease_age_ms[%s]", func() map[string]float64 { return nil })
}

func prefixBad(r *stats.Registry) {
	r.Counter("cache_gets_total", "GET requests served.", "", &gets) // want "lacks the freshcache_ namespace prefix"
}

func caseBad(r *stats.Registry) {
	r.Counter("freshcache_fix_GetsTotal", "GET requests served.", "", &gets) // want "not snake_case"
}

func doubleUnderscoreBad(r *stats.Registry) {
	r.Counter("freshcache_fix__gets_total", "GET requests served.", "", &gets) // want "empty name segments"
}

func reservedSuffixBad(r *stats.Registry) {
	r.Gauge("freshcache_fix_sample_count", "Samples observed.", "", func() float64 { return 0 }) // want "reserved suffix"
}

func histogramUnitBad(r *stats.Registry) {
	r.Histogram("freshcache_fix_fill_rtt", "Miss-fill latency.", // want "must carry a unit suffix"
		stats.LatencySecondsBuckets, 1e9, "", &rtt)
}

func labelBad(r *stats.Registry) {
	r.LabeledCounter("freshcache_fix_misses_total", "GET misses by cause.",
		[]string{"reason"}, []string{"stale"}, "", &misses) // want "not in the fixed label set"
}

func emptyHelpBad(r *stats.Registry) {
	r.Counter("freshcache_fix_gets_total", "", "", &gets) // want "empty help text"
}

func nonConstNameBad(r *stats.Registry, name string) {
	r.Counter(name, "GET requests served.", "", &gets) // want "not a compile-time constant"
}

func wrapperGood(r *stats.Registry) {
	counter := func(name, help, key string, c *stats.Counter) {
		r.Counter("freshcache_fix_"+name, help, key, c)
	}
	counter("gets_total", "GET requests served.", "gets", &gets)
}

func wrapperBad(r *stats.Registry) {
	counter := func(name, help, key string, c *stats.Counter) {
		r.Counter("freshcache_fix_"+name, help, key, c)
	}
	counter("gets", "GET requests served.", "gets", &gets) // want "must end in _total"
	counter("hits_total", "", "hits", &gets)               // want "empty help text"
}
