// borrowedview analyzer fixtures: escapes and mutations of borrowed
// buffers, plus the blessed serve-in-scope and copy-out shapes.
package borrowedview

import (
	"net"
	"time"

	"freshcache/internal/kv"
	"freshcache/internal/proto"
)

type holder struct {
	buf []byte
}

var stash []byte

func storeInFieldBad(a *kv.Authority, h *holder, key string) {
	v, _, ok := a.GetView(key)
	if !ok {
		return
	}
	h.buf = v // want "stored in a struct field"
}

func storeInMapBad(a *kv.Authority, cache map[string][]byte, key string) {
	v, _, _, ok := a.GetViewAged(key)
	if !ok {
		return
	}
	cache[key] = v // want "stored in a map or slice element"
}

func storeInGlobalBad(a *kv.Authority, key string) {
	v, _, ok := a.GetView(key)
	if ok {
		stash = v // want "stored in package-level variable"
	}
}

func sendOnChannelBad(a *kv.Authority, ch chan []byte, key string) {
	v, _, ok := a.GetView(key)
	if ok {
		ch <- v // want "sent on a channel"
	}
}

func mutateBad(a *kv.Authority, key string) {
	v, _, ok := a.GetView(key)
	if ok {
		v[0] = 0xFF // want "write into borrowed"
	}
}

func copyIntoBad(a *kv.Authority, key string, src []byte) {
	v, _, ok := a.GetView(key)
	if ok {
		copy(v, src) // want "copy into borrowed"
	}
}

func appendBad(a *kv.Authority, key string) []byte {
	v, _, ok := a.GetView(key)
	if !ok {
		return nil
	}
	return append(v, 0) // want "append to borrowed"
}

func batchCallbackEscapeBad(a *kv.Authority, keys []string) {
	a.GetViewAgedBatch(keys, func(i int, value []byte, version uint64, written time.Time, ok bool) {
		if ok {
			stash = value // want "stored in package-level variable"
		}
	})
}

func frameBytesEscapeBad(f *proto.SharedFrame, h *holder) {
	b := f.Bytes()
	h.buf = b // want "stored in a struct field"
}

func serveInScopeGood(a *kv.Authority, conn net.Conn, key string) {
	v, _, ok := a.GetView(key)
	if !ok {
		return
	}
	conn.Write(v)
}

func copyOutGood(a *kv.Authority, h *holder, key string) {
	v, _, ok := a.GetView(key)
	if !ok {
		return
	}
	owned := make([]byte, len(v))
	copy(owned, v)
	h.buf = owned
}

func batchServeGood(a *kv.Authority, conn net.Conn, keys []string) {
	a.GetViewAgedBatch(keys, func(i int, value []byte, version uint64, written time.Time, ok bool) {
		if ok {
			conn.Write(value)
		}
	})
}
