// Package binary is a minimal fixture stub so analyzer tests type-check
// hermetically without importing GOROOT source.
package binary

type bigEndian struct{}

var BigEndian bigEndian

func (bigEndian) Uint16(b []byte) uint16 { return 0 }
func (bigEndian) Uint32(b []byte) uint32 { return 0 }
func (bigEndian) Uint64(b []byte) uint64 { return 0 }

func (bigEndian) PutUint16(b []byte, v uint16) {}
func (bigEndian) PutUint32(b []byte, v uint32) {}
func (bigEndian) PutUint64(b []byte, v uint64) {}
