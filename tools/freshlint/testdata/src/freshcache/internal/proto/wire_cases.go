package proto

// wirebounds fixtures that need the unexported cursor: decode paths
// live inside the proto package in the real repository too.

func decodeListBad(c *cursor) ([]uint64, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	vals := make([]uint64, 0, n) // want "make sized by wire-decoded n with no earlier bound check"
	for i := uint32(0); i < n; i++ {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func decodeListGood(c *cursor) ([]uint64, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxBatchOps {
		return nil, errTooBig
	}
	vals := make([]uint64, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// decodeDerivedBad shows taint propagating through a conversion.
func decodeDerivedBad(c *cursor) ([]byte, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	sz := int(n) * 8
	return make([]byte, sz), nil // want "make sized by wire-decoded sz with no earlier bound check"
}

func decodeDerivedGood(c *cursor) ([]byte, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	sz := int(n) * 8
	if sz > MaxFrame {
		return nil, errTooBig
	}
	return make([]byte, sz), nil
}

type protoErr string

func (e protoErr) Error() string { return string(e) }

const errTooBig = protoErr("frame cap exceeded")
