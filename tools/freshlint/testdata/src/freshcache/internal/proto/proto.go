// Package proto is a fixture stub mirroring the API surface of the
// real freshcache/internal/proto package that the analyzers match
// against: the pooled Msg lifecycle, shared frames, frame caps, and
// the wire-decode cursor. Bodies are trivial; only signatures, type
// names, and the import path matter to the analyzers.
package proto

const (
	MaxBatchOps = 1 << 20
	MaxNodes    = 1 << 10
	MaxFrame    = 16 << 20
)

type Msg struct {
	Type    uint8
	Seq     uint64
	Key     string
	Value   []byte
	Keys    []string
	Version uint64
}

func GetMsg() *Msg  { return &Msg{} }
func PutMsg(m *Msg) {}

type SharedFrame struct{ buf []byte }

func (f *SharedFrame) Bytes() []byte { return f.buf }
func (f *SharedFrame) Retain()       {}
func (f *SharedFrame) Release()      {}

func EncodeShared(m *Msg, refs int) (*SharedFrame, error) {
	return &SharedFrame{}, nil
}

// Outgoing is a queued write: either a Msg to encode (released by the
// writer when Pooled) or an already-encoded shared frame.
type Outgoing struct {
	Msg    *Msg
	Raw    *SharedFrame
	Pooled bool
}

func (o *Outgoing) Discard() {}

type cursor struct {
	b []byte
	i int
}

func (c *cursor) u8() (uint8, error)   { return 0, nil }
func (c *cursor) u16() (uint16, error) { return 0, nil }
func (c *cursor) u32() (uint32, error) { return 0, nil }
func (c *cursor) u64() (uint64, error) { return 0, nil }
