// Package stats is a fixture stub mirroring the Registry registration
// API of the real freshcache/internal/stats package. Bodies are no-ops;
// only signatures and the import path matter to the metricname
// analyzer.
package stats

type Counter struct{ v uint64 }

func (c *Counter) Add(n uint64)  {}
func (c *Counter) Value() uint64 { return 0 }

type Histogram struct{ n uint64 }

func (h *Histogram) Observe(v float64) {}
func (h *Histogram) Count() uint64     { return 0 }

type Registry struct{ _ int }

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help, statsKey string, c *Counter) {}
func (r *Registry) LabeledCounter(name, help string, labelNames, labelVals []string, statsKey string, c *Counter) {
}
func (r *Registry) CounterFunc(name, help, statsKey string, fn func() float64) {}
func (r *Registry) Gauge(name, help, statsKey string, fn func() float64)       {}
func (r *Registry) LabeledGauge(name, help string, labelNames, labelVals []string, statsKey string, fn func() float64) {
}
func (r *Registry) GaugeVec(name, help, label, statsKeyFmt string, fn func() map[string]float64) {}
func (r *Registry) Histogram(name, help string, bounds []float64, scale float64, statsKey string, h *Histogram) {
}
func (r *Registry) LabeledHistogram(name, help string, labelNames, labelVals []string, bounds []float64, scale float64, statsKey string, h *Histogram) {
}

var LatencySecondsBuckets = []float64{0.001, 0.01, 0.1, 1}
var BatchSizeBuckets = []float64{1, 8, 64, 512}
