// Package kv is a fixture stub mirroring the striped-authority API of
// the real freshcache/internal/kv package: the 16-way authShard array,
// the borrowed GetView accessors, and the owned-copy Get. Stub bodies
// are deliberately lock-free and trivial; stripelock fixture functions
// live in stripe_cases.go.
package kv

import (
	"sync"
	"time"
)

const numShards = 16

type authEntry struct {
	value   []byte
	version uint64
	written time.Time
}

type authShard struct {
	mu sync.RWMutex
	m  map[string]authEntry
}

// Authority is the striped authoritative map.
type Authority struct {
	shards [numShards]authShard
}

func NewAuthority() *Authority { return &Authority{} }

func (a *Authority) shard(key string) *authShard { return &a.shards[0] }

// Get returns an owned copy of the value.
func (a *Authority) Get(key string) ([]byte, uint64, bool) {
	return nil, 0, false
}

// GetView lends the authority's own buffer: read-only, scope-bound.
func (a *Authority) GetView(key string) ([]byte, uint64, bool) {
	return nil, 0, false
}

// GetViewAged is GetView plus the write timestamp.
func (a *Authority) GetViewAged(key string) ([]byte, uint64, time.Time, bool) {
	return nil, 0, time.Time{}, false
}

// GetViewAgedBatch lends each value to fn for the duration of the call.
func (a *Authority) GetViewAgedBatch(keys []string, fn func(i int, value []byte, version uint64, written time.Time, ok bool)) {
	for i := range keys {
		fn(i, nil, 0, time.Time{}, false)
	}
}

// PutBatch stores a batch, visiting stripes in ascending order.
func (a *Authority) PutBatch(keys []string, values [][]byte) {}
