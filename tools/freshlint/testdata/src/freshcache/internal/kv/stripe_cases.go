package kv

// stripelock fixtures: stripe-locking code lives inside package kv in
// the real repository (authShard is unexported), so the cases do too.

import (
	"net"
	"time"
)

// ascendingGood is the blessed batch shape: one stripe at a time, in
// index order, released before the next iteration.
func (a *Authority) ascendingGood() int {
	n := 0
	for sid := 0; sid < numShards; sid++ {
		s := &a.shards[sid]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// overlapBad holds two stripes at once.
func (a *Authority) overlapBad(i, j int) {
	a.shards[i].mu.Lock()
	a.shards[j].mu.Lock() // want "acquired while stripe lock"
	a.shards[j].mu.Unlock()
	a.shards[i].mu.Unlock()
}

// leakIterationBad acquires each stripe but never releases it within
// the iteration.
func (a *Authority) leakIterationBad() {
	for sid := 0; sid < numShards; sid++ {
		s := &a.shards[sid]
		s.mu.RLock() // want "not released before the next loop iteration"
	}
}

// deferInLoopBad piles all stripes up until return.
func (a *Authority) deferInLoopBad() {
	for sid := 0; sid < numShards; sid++ {
		s := &a.shards[sid]
		s.mu.Lock()
		defer s.mu.Unlock() // want "deferred stripe unlock"
	}
}

// descendingBad walks the stripes backwards while locking.
func (a *Authority) descendingBad() {
	for sid := numShards - 1; sid >= 0; sid-- { // want "descending index loop"
		s := &a.shards[sid]
		s.mu.Lock()
		s.mu.Unlock()
	}
}

// sleepUnderLockBad parks the scheduler with a stripe held.
func (a *Authority) sleepUnderLockBad(sid int) {
	s := &a.shards[sid]
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while stripe lock"
	s.mu.Unlock()
}

// connWriteUnderLockBad performs network I/O with a stripe held.
func (a *Authority) connWriteUnderLockBad(sid int, conn net.Conn, frame []byte) {
	s := &a.shards[sid]
	s.mu.Lock()
	conn.Write(frame) // want "call on net connection"
	s.mu.Unlock()
}

// sendUnderLockBad blocks on a channel with a stripe held.
func (a *Authority) sendUnderLockBad(sid int, ch chan int) {
	s := &a.shards[sid]
	s.mu.Lock()
	ch <- sid // want "channel send while stripe lock"
	s.mu.Unlock()
}

// blockAfterUnlockGood does its blocking work outside the stripe.
func (a *Authority) blockAfterUnlockGood(sid int, conn net.Conn, ch chan int) {
	s := &a.shards[sid]
	s.mu.RLock()
	n := len(s.m)
	s.mu.RUnlock()
	conn.Write(nil)
	ch <- n
	time.Sleep(time.Millisecond)
}

// branchGood releases on every path before blocking.
func (a *Authority) branchGood(sid int, ok bool, ch chan int) {
	s := &a.shards[sid]
	s.mu.Lock()
	if ok {
		s.mu.Unlock()
		ch <- 1
		return
	}
	s.mu.Unlock()
	ch <- 0
}
