// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis API surface that freshlint's
// analyzers are written against.
//
// The build environment for this repository is fully offline (empty
// module cache, no proxy), so the real x/tools module cannot be
// fetched. Rather than vendoring ~40k lines, this package mirrors the
// subset freshlint needs — Analyzer, Pass, Diagnostic — with identical
// field names and semantics, so each analyzer is source-portable to
// x/tools by swapping one import path. Facts, SSA, and the dependency
// graph between analyzers are intentionally out of scope: every
// freshlint analyzer is a self-contained single-package pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass: a named invariant and the
// function that checks a single package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -NAME enable flags
	// and //freshlint:ignore directives. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then the full invariant it enforces.
	Doc string

	// Run applies the analyzer to a package. It returns an
	// analyzer-specific result (unused by freshlint's drivers, kept for
	// x/tools parity) and an error only for internal failures —
	// invariant violations are reported via pass.Report, not errors.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and the sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers wrap it with the
	// //freshlint:ignore filter before handing the Pass to Run.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported violation, anchored to a source
// position.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}
