// Package checker runs a set of analyzers over one type-checked
// package and applies the //freshlint:ignore suppression directives.
// It is the shared core of the two drivers: the unitchecker (go vet
// -vettool protocol) and the analysistest fixture runner.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"freshcache/tools/freshlint/analysis"
)

// A Finding is one diagnostic attributed to the analyzer that produced
// it, with its position resolved.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// An ignoreDirective is one parsed //freshlint:ignore comment. It
// suppresses findings of the named analyzer (or every analyzer, for
// name "all") on the directive's own line and on the line immediately
// below — so it works both as a trailing comment on the flagged line
// and as a standalone comment above it.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
}

const ignorePrefix = "//freshlint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Finding) {
	var dirs []ignoreDirective
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Analyzer: "freshlint",
						Posn:     posn,
						Message:  "malformed //freshlint:ignore directive: want \"//freshlint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:     posn.Filename,
					line:     posn.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, malformed
}

func (d ignoreDirective) matches(f Finding) bool {
	if d.analyzer != "all" && d.analyzer != f.Analyzer {
		return false
	}
	if d.file != f.Posn.Filename {
		return false
	}
	return f.Posn.Line == d.line || f.Posn.Line == d.line+1
}

// Run applies every analyzer to the package and returns the surviving
// findings, sorted by position. Panics inside an analyzer are
// translated into errors naming it, so one broken analyzer cannot take
// down a whole vet run silently.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]Finding, error) {
	ignores, malformed := parseIgnores(fset, files)
	findings := malformed

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Posn:     fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := runProtected(a, pass); err != nil {
			return nil, err
		}
	}

	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range ignores {
			if d.matches(f) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Posn, kept[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

func runProtected(a *analysis.Analyzer, pass *analysis.Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("freshlint: analyzer %s panicked on %s: %v", a.Name, pass.Pkg.Path(), r)
		}
	}()
	_, err = a.Run(pass)
	return err
}
