// Package lintutil holds the small type-query vocabulary the freshlint
// analyzers share: resolving callees, matching repository packages by
// path suffix, and evaluating compile-time string constants.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PkgPathIs reports whether a package path denotes the repository
// package identified by suffix — e.g. suffix "internal/proto" matches
// both the real "freshcache/internal/proto" and a test fixture loaded
// under the same GOPATH-style path. A bare suffix match on a path
// component boundary keeps the analyzers working if the module is ever
// renamed or vendored.
func PkgPathIs(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// Callee returns the *types.Func called by call (package function or
// method, through selections), or nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function
// <pkgSuffix>.<name>.
func IsPkgFunc(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return PkgPathIs(fn.Pkg().Path(), pkgSuffix)
}

// IsMethod reports whether fn is the method <pkgSuffix>.<recvType>.<name>
// (pointer or value receiver).
func IsMethod(fn *types.Func, pkgSuffix, recvType, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || !PkgPathIs(fn.Pkg().Path(), pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := NamedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == recvType
}

// NamedOf returns the named type under t, dereferencing one level of
// pointer, or nil.
func NamedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeIs reports whether t (after dereferencing one pointer level) is
// the named type <pkgSuffix>.<name>.
func TypeIs(t types.Type, pkgSuffix, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Name() != name || n.Obj().Pkg() == nil {
		return false
	}
	return PkgPathIs(n.Obj().Pkg().Path(), pkgSuffix)
}

// ConstString evaluates expr as a compile-time string constant.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// VarOf resolves expr to the *types.Var it names, or nil if expr is not
// a plain identifier for a variable.
func VarOf(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// UsesVar reports whether any identifier inside n resolves to v.
func UsesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// FuncBodies visits every function body in the file — declarations and
// function literals — calling fn once per body with the enclosing
// declaration name ("" for literals).
func FuncBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd.Name.Name, fd.Body)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			fn("", fl.Body)
		}
		return true
	})
}
