// Package msgpool enforces the pooled-Msg lifecycle contract from
// internal/proto: a *proto.Msg obtained from proto.GetMsg is owned by
// exactly one party, must be handed off or released by proto.PutMsg,
// and must never be touched after its release — PutMsg zeroes the
// struct and recycles it, so a late field read observes another
// request's data (or zero), which on the serving path silently corrupts
// a served value.
package msgpool

import (
	"go/ast"
	"go/token"
	"go/types"

	"freshcache/tools/freshlint/analysis"
	"freshcache/tools/freshlint/internal/lintutil"
)

const protoPkg = "internal/proto"

// Analyzer checks the pooled proto.Msg ownership contract.
var Analyzer = &analysis.Analyzer{
	Name: "msgpool",
	Doc: `check proto.GetMsg/PutMsg pooled-Msg lifecycle

A Msg from proto.GetMsg must be released by exactly one proto.PutMsg or
handed off (returned, queued as a Pooled Outgoing, passed to another
owner). After PutMsg(m) — or after queuing proto.Outgoing{Msg: m,
Pooled: true} — m belongs to the pool: reads of its fields race with
the next request that draws it, so retained fields must be copied out
before release. The analyzer flags straight-line uses after release,
double releases, and Msgs that are never released nor handed off.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Use-after-release and double-release: statement sequences.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkSeq(pass, n.List)
			case *ast.CaseClause:
				checkSeq(pass, n.Body)
			case *ast.CommClause:
				checkSeq(pass, n.Body)
			}
			return true
		})
		// Leaks: whole function bodies.
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLeaks(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// releasedBy returns the pooled-Msg variable this statement releases:
// a direct proto.PutMsg(m) call, or a hand-off of ownership to a write
// queue via a proto.Outgoing{Msg: m, Pooled: true} literal anywhere in
// the statement (the queue releases m once the frame is encoded or
// abandoned).
func releasedBy(pass *analysis.Pass, stmt ast.Stmt) *types.Var {
	if es, ok := stmt.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok {
			if v := putMsgArg(pass, call); v != nil {
				return v
			}
		}
	}
	var released *types.Var
	ast.Inspect(stmt, func(n ast.Node) bool {
		if released != nil {
			return false
		}
		if cl, ok := n.(*ast.CompositeLit); ok {
			if v := pooledOutgoingMsg(pass, cl); v != nil {
				released = v
				return false
			}
		}
		return true
	})
	return released
}

func putMsgArg(pass *analysis.Pass, call *ast.CallExpr) *types.Var {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if !lintutil.IsPkgFunc(fn, protoPkg, "PutMsg") || len(call.Args) != 1 {
		return nil
	}
	return lintutil.VarOf(pass.TypesInfo, call.Args[0])
}

// pooledOutgoingMsg matches proto.Outgoing{Msg: m, Pooled: true} and
// returns m's variable.
func pooledOutgoingMsg(pass *analysis.Pass, cl *ast.CompositeLit) *types.Var {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || !lintutil.TypeIs(tv.Type, protoPkg, "Outgoing") {
		return nil
	}
	var msg *types.Var
	pooled := false
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Msg":
			msg = lintutil.VarOf(pass.TypesInfo, kv.Value)
		case "Pooled":
			if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && id.Name == "true" {
				pooled = true
			}
		}
	}
	if !pooled {
		return nil
	}
	return msg
}

// checkSeq walks one statement sequence tracking which pooled Msg
// variables have been released, reporting straight-line uses after the
// release.
func checkSeq(pass *analysis.Pass, stmts []ast.Stmt) {
	released := make(map[*types.Var]token.Pos)
	for _, stmt := range stmts {
		if len(released) > 0 {
			reportUsesAfterRelease(pass, stmt, released)
		}
		// A reassignment gives the variable a fresh Msg: stop tracking.
		if as, ok := stmt.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			for _, lhs := range as.Lhs {
				if v := lintutil.VarOf(pass.TypesInfo, lhs); v != nil {
					delete(released, v)
				}
			}
		}
		if v := releasedBy(pass, stmt); v != nil {
			if _, twice := released[v]; twice {
				pass.Reportf(stmt.Pos(), "pooled Msg %s is released twice (second PutMsg or Pooled hand-off)", v.Name())
			}
			released[v] = stmt.Pos()
		}
	}
}

func reportUsesAfterRelease(pass *analysis.Pass, stmt ast.Stmt, released map[*types.Var]token.Pos) {
	// Identifiers written by a plain assignment are re-bindings, not
	// reads of the released Msg.
	assigned := make(map[*ast.Ident]bool)
	if as, ok := stmt.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				assigned[id] = true
			}
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || assigned[id] {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, rel := released[v]; rel {
			pass.Reportf(id.Pos(), "use of pooled Msg %s after PutMsg: copy retained fields out before releasing", v.Name())
		}
		return true
	})
}

// checkLeaks flags Msgs from proto.GetMsg that are neither released by
// PutMsg nor handed off: every later use is a plain field access, so
// ownership dead-ends and the Msg never returns to the pool.
func checkLeaks(pass *analysis.Pass, body *ast.BlockStmt) {
	type state struct {
		pos      token.Pos
		released bool
		escaped  bool
	}
	gets := make(map[*types.Var]*state)

	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !lintutil.IsPkgFunc(lintutil.Callee(pass.TypesInfo, call), protoPkg, "GetMsg") {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			gets[v] = &state{pos: as.Pos()}
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	// Classify every other occurrence of each tracked variable by its
	// immediate parent: field accesses are neutral, PutMsg releases,
	// anything else (argument, return, send, composite literal, alias)
	// transfers ownership out of this function's view.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		st, tracked := gets[v]
		if !tracked {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				return true // field access: neutral
			}
		case *ast.CallExpr:
			if fn := lintutil.Callee(pass.TypesInfo, p); lintutil.IsPkgFunc(fn, protoPkg, "PutMsg") {
				st.released = true
				return true
			}
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == ast.Expr(id) {
					return true // rebinding, not a use
				}
			}
		}
		st.escaped = true
		return true
	}
	ast.Inspect(body, visit)

	for v, st := range gets {
		if !st.released && !st.escaped {
			pass.Reportf(st.pos, "pooled Msg %s from proto.GetMsg is never released: add proto.PutMsg or hand ownership off", v.Name())
		}
	}
}
