package msgpool_test

import (
	"testing"

	"freshcache/tools/freshlint/analysistest"
	"freshcache/tools/freshlint/msgpool"
)

func TestMsgpool(t *testing.T) {
	analysistest.Run(t, analysistest.SharedTestData(), msgpool.Analyzer, "msgpool")
}
