// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md §3 and EXPERIMENTS.md for recorded outputs):
//
//	BenchmarkFig2*   — Figure 2: TTL-expiry C′_S vs staleness bound
//	BenchmarkFig3*   — Figure 3: TTL-polling C′_F vs staleness bound
//	BenchmarkFig5*   — Figure 5: seven-policy comparison per workload
//	BenchmarkFig6*   — Figure 6: sketch latency/accuracy/storage
//	BenchmarkTable1  — Table 1: measured c_m/c_i/c_u breakdown
//
// plus throughput benchmarks for the simulator, the policy engine and the
// live TCP system. Benchmark metrics are reported via b.ReportMetric so
// `go test -bench=. -benchmem` prints the same quantities the paper
// plots. Run cmd/freshbench for full-scale, human-readable tables.
package freshcache_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"freshcache"
	"freshcache/internal/experiments"
	"freshcache/internal/model"
)

// benchOpts shrinks the experiments so a full -bench=. pass stays fast
// while preserving every curve's shape; cmd/freshbench uses full scale.
func benchOpts() experiments.Options {
	return experiments.Options{
		Duration: 60,
		Seed:     1,
		Bounds:   []float64{0.3, 1, 3, 10},
		T:        0.5,
	}
}

func BenchmarkFig2TTLExpiryStaleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Sim*100, fmt.Sprintf("CS%%/%s/T=%g", p.Workload, p.T))
			}
		}
	}
}

func BenchmarkFig3TTLPollingFreshness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Sim, fmt.Sprintf("CFx/%s/T=%g", p.Workload, p.T))
			}
		}
	}
}

func BenchmarkFig5PolicyComparison(b *testing.B) {
	for _, wl := range freshcache.StandardWorkloadNames() {
		b.Run(wl, func(b *testing.B) {
			tr, err := freshcache.StandardWorkload(wl, 60, 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				for _, pl := range []freshcache.Policy{
					freshcache.TTLExpiry, freshcache.TTLPolling, freshcache.Invalidate,
					freshcache.Update, freshcache.Adaptive, freshcache.AdaptiveCS,
					freshcache.Optimal,
				} {
					res, err := freshcache.Simulate(freshcache.SimConfig{
						T: 0.5, Capacity: tr.NumKeys * 6 / 10, Policy: pl,
						DisableFreshnessCheck: true,
					}, tr)
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(res.CFNorm, "CFx/"+pl.String())
						b.ReportMetric(res.CSNorm*100, "CS%/"+pl.String())
					}
				}
			}
		})
	}
}

func BenchmarkFig6Sketches(b *testing.B) {
	o := benchOpts()
	o.Duration = 30
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.LatencyUS, "us/"+r.Workload+"/"+r.Sketch)
				b.ReportMetric(r.Accuracy*100, "acc%/"+r.Workload+"/"+r.Sketch)
				b.ReportMetric(r.StorageSaving, "save/"+r.Workload+"/"+r.Sketch)
			}
		}
	}
}

func BenchmarkTable1CostBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(16, 256)
		if i == b.N-1 {
			for _, row := range res.Rows {
				b.ReportMetric(row.Total, row.Parameter+"-us")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulated requests/second —
// how fast the evaluation engine chews through traces.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := freshcache.StandardWorkload("poisson", 120, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		_, err := freshcache.Simulate(freshcache.SimConfig{
			T: 1, Capacity: 80, Policy: freshcache.Adaptive,
			DisableFreshnessCheck: true,
		}, tr)
		if err != nil {
			b.Fatal(err)
		}
		total += tr.Len()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineObserveFlush measures the live policy engine's hot path.
func BenchmarkEngineObserveFlush(b *testing.B) {
	eng := freshcache.NewEngine(freshcache.EngineConfig{})
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&511]
		eng.ObserveRead(k)
		eng.ObserveWrite(k)
		if i&8191 == 8191 {
			eng.Flush()
		}
	}
}

// BenchmarkLiveGet measures end-to-end GET latency through a real TCP
// cache node on loopback (hit path).
func BenchmarkLiveGet(b *testing.B) {
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: time.Second})
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go st.Serve(sln) //nolint:errcheck
	defer st.Close()
	ca, err := freshcache.NewCacheServer(freshcache.CacheConfig{
		StoreAddr: sln.Addr().String(), T: time.Second, Name: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ca.Serve(cln) //nolint:errcheck
	defer ca.Close()

	c := freshcache.NewClient(cln.Addr().String(), freshcache.ClientOptions{MaxConns: 1})
	defer c.Close()
	if _, err := c.Put("bench-key", make([]byte, 128)); err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.Get("bench-key"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get("bench-key"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLivePut measures end-to-end write latency through the cache
// node to the store.
func BenchmarkLivePut(b *testing.B) {
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: time.Second})
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go st.Serve(sln) //nolint:errcheck
	defer st.Close()
	c := freshcache.NewClient(sln.Addr().String(), freshcache.ClientOptions{MaxConns: 1})
	defer c.Close()
	val := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put("bench-key", val); err != nil {
			b.Fatal(err)
		}
	}
}

// startBenchStore boots one store server on loopback preloaded with
// nkeys 128-byte values and returns its address.
func startBenchStore(b *testing.B, shard string, nkeys int) string {
	b.Helper()
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: time.Hour, ShardID: shard})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go st.Serve(ln) //nolint:errcheck
	b.Cleanup(func() { st.Close() })
	c := freshcache.NewClient(ln.Addr().String(), freshcache.ClientOptions{})
	defer c.Close()
	val := make([]byte, 128)
	for i := 0; i < nkeys; i++ {
		if _, err := c.Put(fmt.Sprintf("key-%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	return ln.Addr().String()
}

// hammer spreads b.N GETs over `workers` goroutines against get and
// reports ops/sec — the live transport comparison harness.
func hammer(b *testing.B, workers int, get func(key string) error) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < b.N; i += workers {
				if err := get(keys[i&63]); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkLiveThroughput is the transport shoot-out of the pipelining
// work: 64 concurrent workers share one client against one live store
// node. "pipelined" is the multiplexed seq-demux transport; "pooled" is
// the seed-style checkout/blocking-round-trip client it replaced.
func BenchmarkLiveThroughput(b *testing.B) {
	const workers = 64
	for _, mode := range []struct {
		name   string
		pooled bool
	}{{"pipelined", false}, {"pooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			addr := startBenchStore(b, "bench", 64)
			c := freshcache.NewClient(addr, freshcache.ClientOptions{Pooled: mode.pooled})
			defer c.Close()
			hammer(b, workers, func(key string) error {
				_, _, err := c.Get(key)
				return err
			})
		})
	}
}

// BenchmarkLiveThroughputSharded is the cluster variant: 64 workers
// share one sharded client over two store shards, so requests also fan
// across the ring on every call.
func BenchmarkLiveThroughputSharded(b *testing.B) {
	const workers = 64
	for _, mode := range []struct {
		name   string
		pooled bool
	}{{"pipelined", false}, {"pooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			addrs := []string{
				startBenchStore(b, "shard-0", 0),
				startBenchStore(b, "shard-1", 0),
			}
			sc, err := freshcache.NewShardedClient(addrs, 0, freshcache.ClientOptions{Pooled: mode.pooled})
			if err != nil {
				b.Fatal(err)
			}
			defer sc.Close()
			val := make([]byte, 128)
			for i := 0; i < 64; i++ {
				if _, err := sc.Put(fmt.Sprintf("key-%04d", i), val); err != nil {
					b.Fatal(err)
				}
			}
			hammer(b, workers, func(key string) error {
				_, _, err := sc.Get(key)
				return err
			})
		})
	}
}

// BenchmarkAnalyticalModel measures the closed-form evaluation itself.
func BenchmarkAnalyticalModel(b *testing.B) {
	p := freshcache.Params{Lambda: 10, R: 0.9, T: 0.5, Cm: 2, Ci: 0.25, Cu: 1}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, pl := range []freshcache.Policy{
			model.TTLExpiry, model.TTLPolling, model.Invalidate,
			model.Update, model.Adaptive, model.Optimal,
		} {
			c, err := p.PolicyCosts(pl)
			if err != nil {
				b.Fatal(err)
			}
			sink += c.CF
		}
	}
	_ = sink
}

// BenchmarkRingLookup measures consistent-hash routing throughput — the
// per-request cost the LB and every cache pay to pick a key's store
// shard.
func BenchmarkRingLookup(b *testing.B) {
	for _, nodes := range []int{2, 4, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			addrs := make([]string, nodes)
			for i := range addrs {
				addrs[i] = fmt.Sprintf("10.0.0.%d:7001", i+1)
			}
			r, err := freshcache.NewRing(addrs, 0)
			if err != nil {
				b.Fatal(err)
			}
			keys := make([]string, 4096)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%06d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += r.Owner(keys[i&4095])
			}
			_ = sink
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

// BenchmarkRingJoinKeyMovement measures ring construction plus the
// consistent-hashing contract: the fraction of the keyspace that changes
// owner when a node joins (ideal: 1/(n+1); modulo hashing moves ~100%).
func BenchmarkRingJoinKeyMovement(b *testing.B) {
	const keys = 1 << 16
	for _, nodes := range []int{2, 4, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			addrs := make([]string, nodes+1)
			for i := range addrs {
				addrs[i] = fmt.Sprintf("10.0.0.%d:7001", i+1)
			}
			before, err := freshcache.NewRing(addrs[:nodes], 0)
			if err != nil {
				b.Fatal(err)
			}
			var movedFrac float64
			for i := 0; i < b.N; i++ {
				after, err := freshcache.NewRing(addrs, 0)
				if err != nil {
					b.Fatal(err)
				}
				moved := 0
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("key-%06d", k)
					if before.Owner(key) != after.Owner(key) {
						moved++
					}
				}
				movedFrac = float64(moved) / keys
			}
			b.ReportMetric(movedFrac, "moved-frac")
			b.ReportMetric(1/float64(nodes+1), "ideal-frac")
		})
	}
}

// BenchmarkWorkloadGeneration measures trace synthesis speed.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range freshcache.StandardWorkloadNames() {
		b.Run(name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				tr, err := freshcache.StandardWorkload(name, 20, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				n += tr.Len()
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
