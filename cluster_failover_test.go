package freshcache_test

import (
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"freshcache"
)

// failoverCluster is a replicated coordinator-managed deployment:
// N heartbeating stores under replication factor R, M caches and one
// LB, with the coordinator's lease-based failure detector armed.
type failoverCluster struct {
	stores     []*freshcache.StoreServer
	storeAddrs []string
	caches     []*freshcache.CacheServer
	lb         *freshcache.LoadBalancer
	lbAddr     string
	coord      *freshcache.Coordinator
	coordAddr  string
}

func startFailoverCluster(t *testing.T, T, lease time.Duration, nStores, replicas, nCaches int) *failoverCluster {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	cl := &failoverCluster{}

	// Store listeners first: the coordinator's initial ring needs the
	// addresses, and the stores need the coordinator to heartbeat.
	lns := make([]net.Listener, nStores)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		cl.storeAddrs = append(cl.storeAddrs, ln.Addr().String())
	}
	co, err := freshcache.NewCoordinator(freshcache.CoordinatorConfig{
		Stores: cl.storeAddrs, Replicas: replicas,
		LeaseInterval: lease, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go co.Serve(cln) //nolint:errcheck
	t.Cleanup(func() { co.Close() })
	cl.coord = co
	cl.coordAddr = cln.Addr().String()

	for i, ln := range lns {
		st := freshcache.NewStoreServer(freshcache.StoreConfig{
			T: T, ShardID: fmt.Sprintf("shard-%d", i), Logger: quiet,
			ClusterAddr:       cl.coordAddr,
			AdvertiseAddr:     cl.storeAddrs[i],
			HeartbeatInterval: lease / 8,
		})
		go st.Serve(ln) //nolint:errcheck
		t.Cleanup(func() { st.Close() })
		cl.stores = append(cl.stores, st)
	}

	var cacheAddrs []string
	for i := 0; i < nCaches; i++ {
		ca, err := freshcache.NewCacheServer(freshcache.CacheConfig{
			ClusterAddr:   cl.coordAddr,
			T:             T,
			Name:          fmt.Sprintf("cache-%d", i),
			Logger:        quiet,
			RetryInterval: 20 * time.Millisecond,
			WatchInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		caLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go ca.Serve(caLn) //nolint:errcheck
		t.Cleanup(func() { ca.Close() })
		cl.caches = append(cl.caches, ca)
		cacheAddrs = append(cacheAddrs, caLn.Addr().String())
	}

	balancer, err := freshcache.NewLoadBalancer(freshcache.LBConfig{
		ClusterAddr: cl.coordAddr, CacheAddrs: cacheAddrs,
		WatchInterval: 25 * time.Millisecond, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go balancer.Serve(lln) //nolint:errcheck
	t.Cleanup(func() { balancer.Close() })
	cl.lb = balancer
	cl.lbAddr = lln.Addr().String()

	// Wait until every cache subscribed to every store and every store
	// learned the ring (heartbeat anti-entropy).
	for i := range cl.stores {
		deadline := time.Now().Add(5 * time.Second)
		for {
			sm := storeStats(t, cl.storeAddrs[i])
			if sm["subscribers"] >= uint64(nCaches) && sm["ring_epoch"] >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("store %d never became ready (stats %v)", i, sm)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return cl
}

// TestFailoverUnderLoad is the acceptance test of automatic failover:
// in a 3-store (R=2) / 2-cache / 1-LB cluster under concurrent
// read/write load, one store is killed mid-traffic. The lease-based
// failure detector must promote the surviving replicas within a few
// lease intervals, no acknowledged write may be lost, request errors
// must be confined to the detection window, and no read may observe
// data staler than the crash bound (2T: the killed store can take up
// to one un-flushed batch interval of invalidates with it, and the
// disconnect deadline caps the resident tail at kill-time + T).
func TestFailoverUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live cluster test")
	}
	const (
		T     = 500 * time.Millisecond
		lease = 400 * time.Millisecond
		nkeys = 90
		// grace absorbs scheduler and batch-tick jitter on loaded CI
		// machines.
		grace = 300 * time.Millisecond
		// crashBound is the staleness bound asserted across the kill:
		// one batch interval the dead store may never have flushed,
		// plus the disconnect-deadline tail of at most T.
		crashBound = 2 * T
	)
	cl := startFailoverCluster(t, T, lease, 3, 2, 2)

	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	tr := &truth{acks: make(map[string][]ackedWrite)}

	seed := freshcache.NewClient(cl.lbAddr, freshcache.ClientOptions{})
	for _, key := range keys {
		if _, err := seed.Put(key, []byte("0")); err != nil {
			t.Fatal(err)
		}
		tr.recordAck(key, 0)
	}
	seed.Close()

	var (
		loadWG   sync.WaitGroup
		stop     = make(chan struct{})
		mu       sync.Mutex
		firstBad error     // staleness violation or junk read
		lastErr  time.Time // when the most recent request error happened
		reads    int64     // validated reads
		errs     int64     // transient request errors
		lastSeq  atomic1   // writer's acknowledged-sequence high-water
	)
	noteErr := func() {
		mu.Lock()
		lastErr = time.Now()
		errs++
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		if firstBad == nil {
			firstBad = err
		}
		mu.Unlock()
	}

	// One writer, round-robin; request errors are transient by design
	// (the key's owner may be mid-crash), so they are recorded rather
	// than fatal, and only acknowledged writes enter the truth map.
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		c := freshcache.NewClient(cl.lbAddr, freshcache.ClientOptions{})
		defer c.Close()
		seq := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			key := keys[i%len(keys)]
			if _, err := c.Put(key, []byte(strconv.FormatUint(seq, 10))); err != nil {
				noteErr()
			} else {
				tr.recordAck(key, seq)
				lastSeq.store(key, seq)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers: a failed read is transient; a read that parses must be
	// within the crash bound of the truth map.
	for w := 0; w < 4; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			c := freshcache.NewClient(cl.lbAddr, freshcache.ClientOptions{})
			defer c.Close()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				t0 := time.Now()
				v, _, err := c.Get(key)
				if err != nil {
					noteErr()
					time.Sleep(5 * time.Millisecond)
					continue
				}
				seq, perr := strconv.ParseUint(string(v), 10, 64)
				if perr != nil {
					fail(fmt.Errorf("get %q returned junk %q", key, v))
					return
				}
				if d := tr.staleBy(key, seq, t0, crashBound+grace); d > 0 {
					fail(fmt.Errorf("read of %q observed seq %d, staler than the crash bound by %v", key, seq, d))
					return
				}
				mu.Lock()
				reads++
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Let the cluster settle under load (replica syncs complete fast;
	// every acked write is on its replica by construction), then kill
	// one store outright.
	time.Sleep(3 * T)
	victim := 0
	victimAddr := cl.storeAddrs[victim]
	killAt := time.Now()
	cl.stores[victim].Close()

	// Automatic promotion within a few lease intervals.
	var promotedAt time.Time
	deadline := time.Now().Add(10 * lease)
	for {
		ri := cl.coord.RingInfo()
		if len(ri.Nodes) == 2 {
			promotedAt = time.Now()
			for _, n := range ri.Nodes {
				if n == victimAddr {
					t.Fatalf("failover ring still contains the victim: %v", ri.Nodes)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never failed over the killed store (ring %v)", cl.coord.RingInfo().Nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d := promotedAt.Sub(killAt); d > 4*lease {
		t.Errorf("promotion took %v, want within ~%v of the kill", d, 4*lease)
	}

	// Every router swaps to the failover epoch.
	deadline = time.Now().Add(5 * time.Second)
	wantEpoch := cl.coord.RingInfo().Epoch
	for {
		swapped := storeStats(t, cl.lbAddr)["ring_epoch"] >= wantEpoch
		for _, ca := range cl.caches {
			swapped = swapped && ca.StatsMap()["ring_epoch"] >= wantEpoch
		}
		if swapped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("routers never swapped to the failover ring epoch")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Serve well past the failover, then stop the load.
	time.Sleep(4 * T)
	close(stop)
	loadWG.Wait()
	if firstBad != nil {
		t.Fatalf("load failed across the failover: %v", firstBad)
	}

	mu.Lock()
	totalReads, totalErrs, lastErrAt := reads, errs, lastErr
	mu.Unlock()
	if totalReads < 100 {
		t.Fatalf("only %d validated reads; load never ran", totalReads)
	}
	// Errors are transient: none after the routers settled on the new
	// ring. (Allow the settle window: promotion + watcher tick + one
	// in-flight request timeout's worth of slack.)
	settle := promotedAt.Add(time.Second)
	if !lastErrAt.IsZero() && lastErrAt.After(settle) {
		t.Errorf("request errors continued %v past promotion (last at %v, settle %v)",
			lastErrAt.Sub(promotedAt), lastErrAt, settle)
	}
	t.Logf("failover: promotion %v after kill, %d validated reads, %d transient errors",
		promotedAt.Sub(killAt), totalReads, totalErrs)

	// No acknowledged write lost: after quiescing past the staleness
	// window, every key reads back at least its last acknowledged
	// sequence number.
	time.Sleep(crashBound + grace)
	c := freshcache.NewClient(cl.lbAddr, freshcache.ClientOptions{})
	defer c.Close()
	for _, key := range keys {
		v, _, err := c.Get(key)
		if err != nil {
			t.Fatalf("post-failover get %q: %v", key, err)
		}
		got, perr := strconv.ParseUint(string(v), 10, 64)
		if perr != nil {
			t.Fatalf("post-failover get %q returned junk %q", key, v)
		}
		if want := lastSeq.load(key); got < want {
			t.Errorf("key %q lost an acknowledged write: reads seq %d, acked up to %d", key, got, want)
		}
	}
}

// atomic1 is a tiny keyed high-water map for the writer's acked
// sequence numbers.
type atomic1 struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (a *atomic1) store(key string, seq uint64) {
	a.mu.Lock()
	if a.m == nil {
		a.m = make(map[string]uint64)
	}
	if seq > a.m[key] {
		a.m[key] = seq
	}
	a.mu.Unlock()
}

func (a *atomic1) load(key string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m[key]
}
