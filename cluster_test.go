package freshcache_test

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"testing"
	"time"

	"freshcache"
)

// shardedCluster is a live 2-store / 2-cache / 1-LB deployment wired on
// loopback through the public facade.
type shardedCluster struct {
	stores     []*freshcache.StoreServer
	storeAddrs []string
	caches     []*freshcache.CacheServer
	lb         *freshcache.LoadBalancer
	lbAddr     string
	ring       *freshcache.Ring
}

func startShardedCluster(t *testing.T, T time.Duration, nStores, nCaches int) *shardedCluster {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	cl := &shardedCluster{}

	for i := 0; i < nStores; i++ {
		st := freshcache.NewStoreServer(freshcache.StoreConfig{
			T: T, ShardID: fmt.Sprintf("shard-%d", i), Logger: quiet,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go st.Serve(ln) //nolint:errcheck
		t.Cleanup(func() { st.Close() })
		cl.stores = append(cl.stores, st)
		cl.storeAddrs = append(cl.storeAddrs, ln.Addr().String())
	}

	var cacheAddrs []string
	for i := 0; i < nCaches; i++ {
		ca, err := freshcache.NewCacheServer(freshcache.CacheConfig{
			StoreAddrs:    cl.storeAddrs,
			T:             T,
			Name:          fmt.Sprintf("cache-%d", i),
			Logger:        quiet,
			RetryInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go ca.Serve(ln) //nolint:errcheck
		t.Cleanup(func() { ca.Close() })
		cl.caches = append(cl.caches, ca)
		cacheAddrs = append(cacheAddrs, ln.Addr().String())
	}

	balancer, err := freshcache.NewLoadBalancer(freshcache.LBConfig{
		StoreAddrs: cl.storeAddrs,
		CacheAddrs: cacheAddrs,
		Logger:     quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go balancer.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { balancer.Close() })
	cl.lb = balancer
	cl.lbAddr = ln.Addr().String()
	cl.ring = cl.caches[0].Ring()

	// Do not start the clock until every cache is subscribed to every
	// store shard (nCaches subscribers at each store).
	for i, st := range cl.stores {
		deadline := time.Now().Add(5 * time.Second)
		for {
			sm := storeStats(t, cl.storeAddrs[i])
			if sm["subscribers"] >= uint64(nCaches) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("store %d never saw %d subscribers", i, nCaches)
			}
			time.Sleep(5 * time.Millisecond)
		}
		_ = st
	}
	return cl
}

func storeStats(t *testing.T, addr string) map[string]uint64 {
	t.Helper()
	c := freshcache.NewClient(addr, freshcache.ClientOptions{})
	defer c.Close()
	sm, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// TestShardedClusterEndToEnd is the acceptance test of the sharded
// deployment: two store shards, two caches and one LB; reads and writes
// route by the consistent-hash ring; killing one store invalidates only
// that shard's keys while the surviving shard keeps serving fresh data
// within the staleness bound.
func TestShardedClusterEndToEnd(t *testing.T) {
	const T = 500 * time.Millisecond
	cl := startShardedCluster(t, T, 2, 2)

	c := freshcache.NewClient(cl.lbAddr, freshcache.ClientOptions{})
	defer c.Close()

	// Writes and reads through the LB; the ring decides each key's owner.
	var shard0Keys, shard1Keys []string
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if _, err := c.Put(key, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if v, _, err := c.Get(key); err != nil || string(v) != "v1" {
			t.Fatalf("Get %q = %q %v", key, v, err)
		}
		if cl.ring.Owner(key) == 0 {
			shard0Keys = append(shard0Keys, key)
		} else {
			shard1Keys = append(shard1Keys, key)
		}
	}
	if len(shard0Keys) == 0 || len(shard1Keys) == 0 {
		t.Fatalf("ring did not split the keyspace: %d/%d", len(shard0Keys), len(shard1Keys))
	}

	// Writes routed by ring: each store holds exactly the keys it owns.
	if got := cl.stores[0].Authority().Len(); got != len(shard0Keys) {
		t.Errorf("store 0 holds %d keys, ring owns %d", got, len(shard0Keys))
	}
	if got := cl.stores[1].Authority().Len(); got != len(shard1Keys) {
		t.Errorf("store 1 holds %d keys, ring owns %d", got, len(shard1Keys))
	}
	// Reads spread across both caches by key affinity.
	for i, ca := range cl.caches {
		if ca.StatsMap()["gets"] == 0 {
			t.Errorf("cache %d served no reads", i)
		}
	}

	// Bounded staleness across shards while everything is healthy.
	if _, err := c.Put(shard0Keys[0], []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(shard1Keys[0], []byte("v2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * T)
	for _, key := range []string{shard0Keys[0], shard1Keys[0]} {
		if v, _, err := c.Get(key); err != nil || string(v) != "v2" {
			t.Fatalf("after bound, %q = %q %v", key, v, err)
		}
	}

	// Kill store 0: its keys ride the disconnect deadline, then go
	// stale; the other shard must stay fully live.
	killedAt := time.Now()
	cl.stores[0].Close()

	// Within the deadline the dead shard's resident keys still serve.
	if time.Since(killedAt) < T {
		if v, _, err := c.Get(shard0Keys[0]); err != nil || string(v) != "v2" {
			t.Fatalf("dead shard key within deadline: %q %v", v, err)
		}
	}

	// The surviving shard still honors writes within the bound.
	if _, err := c.Put(shard1Keys[1], []byte("v3")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * T)
	if v, _, err := c.Get(shard1Keys[1]); err != nil || string(v) != "v3" {
		t.Fatalf("surviving shard after kill: %q %v", v, err)
	}

	// Past the deadline the dead shard's keys must not serve silently
	// stale data: the cache misses and the fill fails.
	if _, _, err := c.Get(shard0Keys[0]); err == nil {
		t.Fatal("dead shard's key served past its deadline")
	} else if errors.Is(err, freshcache.ErrNotFound) {
		t.Fatalf("dead shard's key reported not-found instead of failing: %v", err)
	}

	// Only shard 0's resident keys were deadlined on each cache.
	now := time.Now()
	for i, ca := range cl.caches {
		for _, key := range shard1Keys {
			if e, found, _ := ca.KV().Get(key, now); found && !e.ExpireAt.IsZero() {
				t.Errorf("cache %d: healthy shard key %q carries a disconnect deadline", i, key)
			}
		}
	}

	// LB stats reflect the sharded topology.
	sm, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sm["stores"] != 2 || sm["caches"] != 2 {
		t.Errorf("lb topology stats: %v", sm)
	}
}

// TestShardedClusterReadReportsReachOwners checks the read-report path
// under sharding: each store's policy engine must see read counts only
// for keys it owns.
func TestShardedClusterReadReportsReachOwners(t *testing.T) {
	const T = 60 * time.Millisecond
	cl := startShardedCluster(t, T, 2, 1)

	c := freshcache.NewClient(cl.lbAddr, freshcache.ClientOptions{})
	defer c.Close()

	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("rr-%03d", i)
		if _, err := c.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if _, _, err := c.Get(key); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s0 := storeStats(t, cl.storeAddrs[0])["read_reports"]
		s1 := storeStats(t, cl.storeAddrs[1])["read_reports"]
		if s0 > 0 && s1 > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read reports not partitioned to both shards: %d/%d", s0, s1)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
