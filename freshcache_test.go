package freshcache_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"freshcache"
)

// TestPublicAPISimulation exercises the paper's core result through the
// public facade only: at a real-time staleness bound, the adaptive
// write-reactive policy beats both TTL policies on freshness cost.
func TestPublicAPISimulation(t *testing.T) {
	tr, err := freshcache.StandardWorkload("poisson", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pl freshcache.Policy) freshcache.SimResult {
		res, err := freshcache.Simulate(freshcache.SimConfig{
			T: 0.5, Capacity: 80, Policy: pl,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	adaptive := run(freshcache.Adaptive)
	polling := run(freshcache.TTLPolling)
	expiry := run(freshcache.TTLExpiry)
	if adaptive.CFNorm >= polling.CFNorm {
		t.Errorf("adaptive C'_F %v >= ttl-polling %v", adaptive.CFNorm, polling.CFNorm)
	}
	if adaptive.CFNorm >= expiry.CFNorm {
		t.Errorf("adaptive C'_F %v >= ttl-expiry %v", adaptive.CFNorm, expiry.CFNorm)
	}
	if adaptive.FreshnessViolations != 0 {
		t.Errorf("%d freshness violations", adaptive.FreshnessViolations)
	}
	// Theory is reachable through the facade too.
	cf, _, err := freshcache.SimTheory(tr, 0.5, freshcache.DefaultSimCosts(), freshcache.TTLPolling)
	if err != nil || cf <= 0 {
		t.Errorf("SimTheory: cf=%v err=%v", cf, err)
	}
}

// TestPublicAPILiveSystem boots a full store+cache+lb cluster through the
// facade and checks the end-to-end read/write path.
func TestPublicAPILiveSystem(t *testing.T) {
	const T = 40 * time.Millisecond
	st := freshcache.NewStoreServer(freshcache.StoreConfig{T: T})
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go st.Serve(sln) //nolint:errcheck
	defer st.Close()

	ca, err := freshcache.NewCacheServer(freshcache.CacheConfig{
		StoreAddr: sln.Addr().String(), T: T, Name: "api-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ca.Serve(cln) //nolint:errcheck
	defer ca.Close()

	balancer, err := freshcache.NewLoadBalancer(freshcache.LBConfig{
		StoreAddr:  sln.Addr().String(),
		CacheAddrs: []string{cln.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go balancer.Serve(bln) //nolint:errcheck
	defer balancer.Close()

	c := freshcache.NewClient(bln.Addr().String(), freshcache.ClientOptions{})
	defer c.Close()

	if _, err := c.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Get("k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q %v", v, err)
	}
	if _, _, err := c.Get("missing"); !errors.Is(err, freshcache.ErrNotFound) {
		t.Errorf("missing key: %v", err)
	}
	// Freshness within the bound: write, wait > T + delivery slack, read.
	if _, err := c.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * T)
	v, _, err = c.Get("k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("after bound: %q %v", v, err)
	}
}

// TestPublicAPIEngineAndSketches drives the policy engine directly.
func TestPublicAPIEngineAndSketches(t *testing.T) {
	tk, err := freshcache.NewTopK(16, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := freshcache.NewEngine(freshcache.EngineConfig{
		Costs:   freshcache.FixedCosts(2, 0.25, 1),
		Tracker: tk,
	})
	eng.ObserveRead("hot")
	eng.ObserveWrite("hot")
	ds := eng.Flush()
	if len(ds) != 1 || ds[0].Key != "hot" {
		t.Fatalf("decisions: %v", ds)
	}
	if ds[0].Action != freshcache.ActionUpdate && ds[0].Action != freshcache.ActionInvalidate {
		t.Errorf("action: %v", ds[0].Action)
	}
	if !freshcache.ShouldUpdateEW(1, 1, 0.25, 2) {
		t.Error("E[W]=1 rule wrong")
	}
	if freshcache.HashKey("a") == freshcache.HashKey("b") {
		t.Error("hash collision")
	}
	if _, err := freshcache.NewCountMin(0, 0); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := freshcache.ParsePolicy("adaptive"); err != nil {
		t.Error(err)
	}
}

// TestPublicAPIComposites exercises the §5 many-to-many extension through
// the facade: a write to one fragment invalidates the page built from it.
func TestPublicAPIComposites(t *testing.T) {
	eng := freshcache.NewEngine(freshcache.EngineConfig{})
	deps := freshcache.NewComposites()
	if err := deps.Register("page:home", []string{"frag:feed", "frag:header"}); err != nil {
		t.Fatal(err)
	}
	eng.ObserveWrite("frag:feed")
	ds := eng.FlushExpanded(deps)
	if len(ds) != 2 || ds[1].Key != "page:home" || ds[1].Action != freshcache.ActionInvalidate {
		t.Fatalf("composite fan-out: %v", ds)
	}
}

// TestPublicAPIModel checks the analytical model facade.
func TestPublicAPIModel(t *testing.T) {
	p := freshcache.Params{Lambda: 1, R: 0.9, T: 0.1, Cm: 1, Ci: 1, Cu: 1}
	inv, err := p.PolicyCosts(freshcache.Invalidate)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := p.PolicyCosts(freshcache.TTLExpiry)
	if err != nil {
		t.Fatal(err)
	}
	if inv.CF >= exp.CF {
		t.Errorf("§3.1: invalidation C_F %v should beat ttl-expiry %v", inv.CF, exp.CF)
	}
	prims := freshcache.MeasuredPrimitives(1 << 10)
	costs := prims.For(freshcache.BottleneckCPU, 16, 1024)
	if !(costs.Cu < costs.Cm) {
		t.Errorf("measured costs violate cu < cm: %+v", costs)
	}
}
